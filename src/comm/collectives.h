// Operator-centric collective communication — the NCCL analog (paper §2.1).
//
// These are *synchronizing, coarse-grained* primitives: each call pays the
// collective setup latency, rendezvous with all peers, and only returns when
// the local result is complete. That coarse synchronization is exactly the
// inefficiency TileLink's tile-centric primitives remove; keeping it honest
// here is what makes the non-overlap baselines meaningful.
//
// SPMD usage: every rank calls the same function with its own RankCtx and
// the shared per-rank tensor vectors (symmetric allocation order).
#pragma once

#include <vector>

#include "runtime/world.h"
#include "sim/coro.h"
#include "tensor/tensor.h"

namespace tilelink::comm {

// Per-rank tensor list indexed by rank (symmetric heap entries).
using SymTensor = std::vector<Tensor>;

enum class Algo {
  kFullMesh,  // NVSwitch-style: every pair simultaneously
  kRing,      // neighbor ring, (R-1) steps
};

// out[rank] = concat over r of shards[r] along dim 0.
// shards[r]: [M/R, N] on rank r; outs[r]: [M, N] on rank r.
sim::Coro AllGather(rt::RankCtx& ctx, const SymTensor& shards,
                    const SymTensor& outs, Algo algo = Algo::kFullMesh);

// outs[rank] = sum over r of ins[r] restricted to row-block `rank`.
// ins[r]: [M, N] partial sums on rank r; outs[r]: [M/R, N].
sim::Coro ReduceScatter(rt::RankCtx& ctx, const SymTensor& ins,
                        const SymTensor& outs, Algo algo = Algo::kRing);

// outs[rank] = sum over r of ins[r]; implemented as RS + AG.
sim::Coro AllReduce(rt::RankCtx& ctx, const SymTensor& ins,
                    const SymTensor& outs);

// outs[d] row-block s = ins[s] row-block d (block transpose across ranks).
sim::Coro AllToAll(rt::RankCtx& ctx, const SymTensor& ins,
                   const SymTensor& outs);

// Host references for tests (operate on per-rank tensors directly).
void AllGatherRef(const SymTensor& shards, const SymTensor& outs);
void ReduceScatterRef(const SymTensor& ins, const SymTensor& outs);

}  // namespace tilelink::comm
