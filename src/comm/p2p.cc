#include "comm/p2p.h"

#include "tensor/tensor_ops.h"

namespace tilelink::comm {
namespace {

sim::Coro TransferAndCommit(rt::World& world, Tensor src, Tensor dst,
                            uint64_t wire_bytes) {
  const sim::TimeNs start = world.sim().Now();
  const uint64_t wt = world.checker().OpenWrite(start);
  co_await world.Transfer(src.device(), dst.device(), wire_bytes);
  if (world.functional()) {
    CopyTensor(src, dst);
  }
  int64_t lo = 0, hi = 0;
  dst.BufferRange(&lo, &hi);
  world.checker().RecordWrite(dst.buffer(), lo, hi, start, world.sim().Now(),
                              "p2p_copy");
  world.checker().CloseWrite(wt);
}

}  // namespace

sim::Coro CopyTensorP2P(rt::World& world, rt::Device& engine_owner,
                        Tensor src, Tensor dst) {
  TL_CHECK(src.shape() == dst.shape());
  co_await engine_owner.copy_engines().Acquire();
  sim::ResourceLease lease(engine_owner.copy_engines(), 1);
  co_await sim::Delay{world.spec().dma_setup_latency};
  // Copy engines run below NVLink peak; bill the efficiency loss as extra
  // wire time.
  const uint64_t wire_bytes = static_cast<uint64_t>(
      static_cast<double>(src.logical_bytes()) / world.spec().dma_efficiency);
  co_await TransferAndCommit(world, src, dst, wire_bytes);
}

sim::Coro CopyTensorSM(rt::World& world, Tensor src, Tensor dst) {
  TL_CHECK(src.shape() == dst.shape());
  co_await TransferAndCommit(world, src, dst, src.logical_bytes());
}

}  // namespace tilelink::comm
