// Point-to-point tensor copies over the simulated fabric — the building
// block for collectives and for TileLink's rank_copy_data host primitive.
#pragma once

#include "runtime/world.h"
#include "sim/coro.h"
#include "tensor/tensor.h"

namespace tilelink::comm {

// Copies src (on some rank) into dst (on some rank) using one of
// `engine_owner`'s DMA copy engines. Bills setup latency + fabric time;
// performs the functional copy after the transfer completes and registers
// the write with the consistency checker.
sim::Coro CopyTensorP2P(rt::World& world, rt::Device& engine_owner,
                        Tensor src, Tensor dst);

// Same transfer but driven by processing cores (SM-push): the caller is a
// device block coroutine that already holds an SM; no DMA engine involved.
sim::Coro CopyTensorSM(rt::World& world, Tensor src, Tensor dst);

}  // namespace tilelink::comm
