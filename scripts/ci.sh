#!/usr/bin/env bash
# CI: tier-1 verify plus the tuned-bench smoke stages.
#   1. RelWithDebInfo, -Wall -Wextra -Werror (warnings are errors)
#   2. Debug + AddressSanitizer
#   3. Debug + ThreadSanitizer: the parallel-search determinism tests —
#      including the shared read-only FaultPlan retry-path search — and
#      the tuned-config-cache stress run with real data races reported as
#      errors (the sharded autotuner and the concurrent cache are the only
#      multi-threaded code paths).
#   4. Bench smoke: the autotuned fig8/fig11 benches (each exits nonzero if
#      any tuned config loses to its hand-picked default, fig8 also if the
#      halving/bound machinery stops skipping candidates, and fig11 also if
#      the simulated two-node dilution leaves the paper's ballpark), plus
#      the simulator microbenchmarks. fig11 also gates the parallel-tuning
#      identity: the cold sweep at --tune-threads 8 must reproduce the
#      serial sweep's cache bit-for-bit. Machine-readable results land in
#      build-ci/BENCH_*.json; fig11 warm-starts its tuned-config cache from
#      build-ci/BENCH_fig11_cache.json when a previous run left one.
#   5. 16-GPU smoke: the two-node fabric bench with --payload --fused —
#      fails if the functional 2x8 collectives are not bit-exact with zero
#      consistency violations (or an injected NIC-stage fault goes
#      uncaught), if a hierarchical collective loses to its flat
#      single-stage baseline at 2x8, if a tuned DP-sync config loses to
#      the hand-picked two-node defaults, or if the fused gemm_hier_rs
#      kernel loses to the layer-level GEMM-then-HierRS compose (or its
#      functional run is not bit-exact / violation-free), or if the
#      planner-generated ag_gemm_hier loses its --ag-fused gate (fused vs
#      AllGather-then-GEMM compose, tuned vs seed, small-m column split,
#      functional + fault-injected bit-exactness). The bench also
#      self-gates the fabric timeline: the recorded chrome-trace JSON must
#      parse, the producer->ring->rail->reduce flow chain must be present,
#      the profiler must be internally consistent (utilizations in [0,1],
#      critical path <= makespan), traced faults must surface as fault.*
#      instants, and makespans must be bitwise identical with tracing on or
#      off. The stage then checks the fabric.* keys landed in the JSON
#      report and that the saved trace file is non-trivial.
#   6. Serving smoke: the continuous-batching bench drives a deterministic
#      request trace through per-model replicas with laddered cold tuning
#      behind the online config service — it self-gates p99/cold-tune
#      latency bounds, the cold+warm hit rate, tuned >= seed, bitwise
#      same-seed reproducibility (trace + cache), and the ladder's
#      efficiency/argmin contract against the exhaustive search. The stage
#      then checks the serving.* keys landed in BENCH_serving.json.
# Usage: scripts/ci.sh [--fast]   (--fast skips the sanitizer/bench stages)
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "=== [1/6] RelWithDebInfo, -Wall -Wextra -Werror ==="
cmake -B build-ci -S . -DTILELINK_WERROR=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-ci -j
# --timeout: a hung coroutine pipeline fails fast instead of
# stalling the whole CI run.
(cd build-ci && ctest --output-on-failure --timeout 120 -j"$(nproc)")

if [[ "$FAST" == "0" ]]; then
  echo "=== [2/6] Debug + ASan ==="
  cmake -B build-asan -S . -DTILELINK_ASAN=ON -DCMAKE_BUILD_TYPE=Debug
  cmake --build build-asan -j
  # ctest includes test_multinode, so the functional collectives' payload
  # and staging buffers are leak-checked here (the coroutine frame pools
  # are already gated off under ASan). detect_leaks is pinned on so a
  # platform default can't silently drop the leak check.
  (cd build-asan && ASAN_OPTIONS=detect_leaks=1 \
      ctest --output-on-failure --timeout 300 -j"$(nproc)")

  echo "=== [3/6] Debug + TSan (parallel search + concurrent cache) ==="
  cmake -B build-tsan -S . -DTILELINK_TSAN=ON -DCMAKE_BUILD_TYPE=Debug
  cmake --build build-tsan -j --target test_tuning
  # halt_on_error: a data race fails the stage instead of scrolling past.
  TSAN_OPTIONS=halt_on_error=1 ./build-tsan/test_tuning

  echo "=== [4/6] Bench smoke (tuned configs must beat hand-picked) ==="
  ./build-ci/bench_micro_sim --json build-ci/BENCH_micro_sim.json
  ./build-ci/bench_fig8_mlp --json build-ci/BENCH_fig8.json
  ./build-ci/bench_fig11_e2e --tune-threads 8 \
      --json build-ci/BENCH_fig11.json \
      --cache build-ci/BENCH_fig11_cache.json

  echo "=== [5/6] 16-GPU smoke (payload + fused + ag-fused + faults) ==="
  # The generated/hand-built identity suite (test_overlap_gen) already ran
  # under ctest in stages 1-2; this stage gates the *generated* kernel's
  # end-to-end win: --ag-fused fails if the planner-generated ag_gemm_hier
  # loses to the AllGather-then-GEMM compose at any gate shape (including
  # the small-m column-split shape), if the tuner regresses past the seed,
  # if the small-m planner stops column-splitting, or if the functional /
  # fault-injected runs are not bit-exact and checker-clean.
  ./build-ci/bench_multinode_fabric --payload --fused --ag-fused --faults \
      --json build-ci/BENCH_multinode.json \
      --trace build-ci/TRACE_multinode.json
  # The bench already gates trace validity, the flow chain and profiler
  # consistency via its exit code; double-check the artifacts made it out.
  for key in fabric.exposed_comm_frac fabric.critical_path_ns \
             fabric.compute_util fabric.wire_util \
             fabric.ag_fused_speedup fabric.ag_fused_exposed_comm_frac; do
    grep -q "\"$key\"" build-ci/BENCH_multinode.json \
        || { echo "missing $key in BENCH_multinode.json"; exit 1; }
  done
  [[ -s build-ci/TRACE_multinode.json ]] \
      || { echo "empty TRACE_multinode.json"; exit 1; }
  grep -q '"ph"' build-ci/TRACE_multinode.json \
      || { echo "TRACE_multinode.json has no trace events"; exit 1; }

  echo "=== [6/6] Serving smoke (continuous batching + online config service) ==="
  # The bench exits nonzero if any of its own gates fail: fleet p99 and
  # per-unseen-shape cold-tune latency bounds, cache hit rate across a
  # cold+warm replica pair, tuned-vs-seed geomean >= 1, bitwise identical
  # trace+cache on a same-seed rerun, and the laddered search matching the
  # exhaustive argmin on every tuned MLP shape within 25% of its
  # full-fidelity evaluations.
  ./build-ci/bench_serving --requests 24 --tune-threads 8 \
      --json build-ci/BENCH_serving.json \
      --cache build-ci/BENCH_serving_cache.json
  for key in serving.p99_ms serving.cache_hit_rate serving.tuned_speedup; do
    grep -q "\"$key\"" build-ci/BENCH_serving.json \
        || { echo "missing $key in BENCH_serving.json"; exit 1; }
  done
fi

echo "CI OK"
