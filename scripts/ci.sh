#!/usr/bin/env bash
# CI: tier-1 verify in two configurations.
#   1. RelWithDebInfo, -Wall -Wextra -Werror (warnings are errors)
#   2. Debug + AddressSanitizer
# Usage: scripts/ci.sh [--fast]   (--fast skips the ASan configuration)
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "=== [1/2] RelWithDebInfo, -Wall -Wextra -Werror ==="
cmake -B build-ci -S . -DTILELINK_WERROR=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-ci -j
(cd build-ci && ctest --output-on-failure -j"$(nproc)")

if [[ "$FAST" == "0" ]]; then
  echo "=== [2/2] Debug + ASan ==="
  cmake -B build-asan -S . -DTILELINK_ASAN=ON -DCMAKE_BUILD_TYPE=Debug
  cmake --build build-asan -j
  (cd build-asan && ctest --output-on-failure -j"$(nproc)")
fi

echo "CI OK"
