#!/usr/bin/env bash
# CI: tier-1 verify plus the tuned-bench smoke stage.
#   1. RelWithDebInfo, -Wall -Wextra -Werror (warnings are errors)
#   2. Debug + AddressSanitizer
#   3. Bench smoke: the autotuned fig8/fig11 benches (each exits nonzero if
#      any tuned config loses to its hand-picked default, and fig8 also if
#      the halving/bound machinery stops skipping candidates), plus the
#      simulator microbenchmarks. Machine-readable results land in
#      build-ci/BENCH_*.json; fig11 warm-starts its tuned-config cache from
#      build-ci/BENCH_fig11_cache.json when a previous run left one.
# Usage: scripts/ci.sh [--fast]   (--fast skips the ASan and bench stages)
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "=== [1/3] RelWithDebInfo, -Wall -Wextra -Werror ==="
cmake -B build-ci -S . -DTILELINK_WERROR=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-ci -j
(cd build-ci && ctest --output-on-failure -j"$(nproc)")

if [[ "$FAST" == "0" ]]; then
  echo "=== [2/3] Debug + ASan ==="
  cmake -B build-asan -S . -DTILELINK_ASAN=ON -DCMAKE_BUILD_TYPE=Debug
  cmake --build build-asan -j
  (cd build-asan && ctest --output-on-failure -j"$(nproc)")

  echo "=== [3/3] Bench smoke (tuned configs must beat hand-picked) ==="
  ./build-ci/bench_micro_sim --json build-ci/BENCH_micro_sim.json
  ./build-ci/bench_fig8_mlp --json build-ci/BENCH_fig8.json
  ./build-ci/bench_fig11_e2e --json build-ci/BENCH_fig11.json \
      --cache build-ci/BENCH_fig11_cache.json
fi

echo "CI OK"
