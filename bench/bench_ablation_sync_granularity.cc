// Ablation (paper §3.1, Figure 2b — tile order / §4.1 channels): barrier
// channel granularity. One channel per rank means consumers wait for a whole
// shard (coarse, late start); one channel per tile means maximal overlap but
// more signal traffic. Sweeps channels_per_rank for DMA AG+GEMM.
#include "bench/bench_common.h"
#include "tilelink/kernels/ag_gemm.h"

namespace tilelink::bench {
namespace {

double Run(int channels_per_rank) {
  rt::World world = MakeH800x8();
  tl::AgGemmConfig cfg;
  cfg.m = 8192;
  cfg.k = 4096;
  cfg.n = 11008 / 8;
  cfg.gemm = CoarseTiling(cfg.k);
  cfg.comm_tile_m = 128;
  cfg.channels_per_rank = channels_per_rank;
  cfg.comm = tl::CommResource::kDma;
  tl::AgGemm bench(world, cfg);
  return ToMsD(world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); }));
}

}  // namespace
}  // namespace tilelink::bench

int main() {
  using namespace tilelink::bench;
  std::printf("=== Ablation: barrier channels per rank (DMA AG+GEMM, MLP-1) "
              "===\n");
  std::printf("%-18s %s\n", "channels/rank", "time");
  for (int c : {1, 2, 4, 8}) {
    std::printf("%-18d %8.3f ms%s\n", c, Run(c),
                c == 4 ? "   <- default" : "");
  }
  std::printf(
      "\nCoarse channels (1/rank) delay consumers until a whole shard lands;"
      " fine channels overlap better but add per-chunk DMA setup and signal "
      "costs — the fS/fR/fC granularity trade-off of §4.1.\n");
  return 0;
}
