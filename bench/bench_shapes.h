// Benchmark shapes from Table 4 of the paper, plus the Table 2 motivational
// configuration (LLaMA-7B MLP).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tilelink::bench {

struct MlpShape {
  std::string name;
  int64_t s;  // batch x sequence tokens
  int64_t h;  // hidden
  int64_t i;  // intermediate
  std::string source;
};

inline std::vector<MlpShape> Table4Mlp() {
  return {
      {"MLP-1", 8192, 4096, 11008, "LLaMA-7B"},
      {"MLP-2", 8192, 4096, 14336, "LLaMA-3.1-8B"},
      {"MLP-3", 8192, 3584, 14336, "Gemma-2-9B"},
      {"MLP-4", 8192, 4608, 36864, "Gemma-2-27B"},
      {"MLP-5", 8192, 8192, 28672, "LLaMA-3.1-70B"},
      {"MLP-6", 8192, 8192, 29568, "Qwen-2-72B"},
  };
}

struct MoeShape {
  std::string name;
  int64_t s;
  int64_t h;
  int64_t i;
  int e;
  int topk;
};

inline std::vector<MoeShape> Table4Moe() {
  return {
      {"MoE-1", 8192, 2048, 1536, 8, 2},  {"MoE-2", 8192, 2048, 1536, 32, 2},
      {"MoE-3", 8192, 2048, 1536, 32, 5}, {"MoE-4", 8192, 4096, 2048, 8, 2},
      {"MoE-5", 8192, 4096, 2048, 32, 2}, {"MoE-6", 8192, 4096, 2048, 32, 5},
  };
}

struct AttnShape {
  std::string name;
  int heads;
  int64_t head_dim;
  std::vector<int64_t> seq_lens;
};

inline std::vector<AttnShape> Table4Attn() {
  return {
      {"Attn-1", 32, 128, {16384, 32768, 65536, 131072}},
      {"Attn-2", 64, 128, {16384, 32768, 65536, 131072}},
  };
}

}  // namespace tilelink::bench
