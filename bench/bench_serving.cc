// Serving-scale bench: continuous batching over a mixed prefill/decode
// request trace, one replica per model, with every TileLink config obtained
// online from the config service (serving/config_service.h) using laddered
// multi-fidelity cold tunes.
//
// Three phases, all gated:
//
//  1. Cold replica: a fresh estimator attached to an empty service runs the
//     whole trace — every unseen bucketed shape pays a laddered cold tune.
//     Gates: p99 request latency under budget, worst single cold-tune wall
//     time under budget, tuned-vs-seed geomean speedup >= 1.
//  2. Warm replica: a second fresh estimator attached to the *same* service
//     re-runs the trace — every lookup must hit, so the combined hit rate
//     approaches the shape-sharing ratio. Gate: hit rate over both replicas
//     above threshold; the warm replica's simulated results are bitwise
//     identical to the cold one's.
//  3. Reproducibility: an independent service + estimator with the same
//     seed must produce a bitwise-identical request/step trace and
//     bitwise-identical cache contents (ToJson).
//
// Ladder efficiency gate: for every MLP shape the serving run actually
// tuned (parsed back out of the cache keys), the laddered search is
// re-run against an exhaustive full-fidelity sweep of the same space —
// the ladder must spend <= 25% of the exhaustive full-fidelity
// simulations in aggregate while matching the exhaustive argmin cost on
// every shape.
//
// Flags: --requests <n> scales the trace (CI smoke uses a small one);
// --tune-threads <n> autotuner workers; --json/--cache as usual
// (bench_common). JSON keys land under serving.* (p50/p99, hit rate,
// tuned speedup, ladder efficiency).
#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "models/model_zoo.h"
#include "models/transformer.h"
#include "serving/config_service.h"
#include "serving/serving_sim.h"
#include "tilelink/builder/kernel_tuning.h"

namespace {

using namespace tilelink;
using namespace tilelink::bench;

constexpr int kTp = 8;
// Gate budgets. Latencies are simulated (deterministic); the cold-tune
// budget is wall-clock and set loosely for slow CI machines.
constexpr double kMaxP99Ms = 60000.0;       // simulated request p99
constexpr double kMaxColdTuneMs = 10000.0;  // worst single cold search
constexpr double kMinHitRate = 0.45;        // across cold + warm replicas
constexpr double kMaxLadderFrac = 0.25;     // ladder / exhaustive full evals

serving::ServingOptions MakeOptions(int num_requests) {
  serving::ServingOptions opts;
  for (const char* name :
       {"GPT3-6.7B", "LLaMA2-13B", "LLaMA2-70B", "Mixtral-8x7B"}) {
    opts.models.push_back(models::GetModel(name));
  }
  opts.traffic.seed = 1;
  opts.traffic.num_requests = num_requests;
  opts.traffic.mean_interarrival = sim::Ms(5);
  opts.traffic.min_prompt = 64;
  opts.traffic.max_prompt = 2048;
  opts.traffic.min_gen = 8;
  opts.traffic.max_gen = 64;
  return opts;
}

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Parses "kind/m x k x n/..." cache keys back into MLP shapes so the ladder
// efficiency gate searches exactly the shapes the serving run tuned.
struct MlpKeyShape {
  std::string kind;
  tl::MlpPartShape shape;
};

std::vector<MlpKeyShape> MlpShapesFromCache(
    const tl::TunedConfigCache& cache) {
  std::vector<MlpKeyShape> out;
  for (const auto& [key, entry] : cache.Entries()) {
    const std::size_t slash = key.find('/');
    if (slash == std::string::npos) continue;
    const std::string kind = key.substr(0, slash);
    if (kind != "ag_gemm" && kind != "gemm_rs") continue;
    const std::size_t end = key.find('/', slash + 1);
    if (end == std::string::npos) continue;
    long long d[3] = {0, 0, 0};
    if (std::sscanf(key.substr(slash + 1, end - slash - 1).c_str(),
                    "%lldx%lldx%lld", &d[0], &d[1], &d[2]) != 3) {
      continue;
    }
    out.push_back(MlpKeyShape{kind, tl::MlpPartShape{d[0], d[1], d[2]}});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchReport report(argc, argv);
  int num_requests = 48;
  int tune_threads = 4;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--requests") {
      num_requests = std::max(1, std::atoi(argv[i + 1]));
    }
    if (std::string(argv[i]) == "--tune-threads") {
      tune_threads = std::max(1, std::atoi(argv[i + 1]));
    }
  }
  const serving::ServingOptions opts = MakeOptions(num_requests);
  bool ok = true;

  // Phase 1: cold replica — every unseen shape pays a laddered cold tune.
  serving::ConfigService service(
      serving::ConfigService::Options{0, tune_threads, /*laddered=*/true});
  models::E2eEstimator cold(kTp, /*batch=*/1, /*seq=*/1, /*two_node=*/false);
  service.Attach(&cold);
  auto t0 = std::chrono::steady_clock::now();
  const serving::ServingResult res = serving::RunServing(opts, &cold);
  const double cold_s = Seconds(t0);
  const serving::ConfigService::Snapshot cold_snap = service.Stats();

  std::printf("=== serving: continuous batching, %d requests, %zu models, "
              "TP%d ===\n",
              num_requests, opts.models.size(), kTp);
  std::printf("%-16s %9s %7s %12s %12s %12s\n", "model", "requests", "steps",
              "p50", "p99", "makespan");
  for (const serving::ModelServingResult& row : res.per_model) {
    std::printf("%-16s %9lld %7lld %10.3fms %10.3fms %10.3fms\n",
                row.model.c_str(), (long long)row.requests,
                (long long)row.steps, ToMsD(row.p50_latency),
                ToMsD(row.p99_latency), ToMsD(row.makespan));
    report.Record("serving." + row.model + ".p50_ms", ToMsD(row.p50_latency));
    report.Record("serving." + row.model + ".p99_ms", ToMsD(row.p99_latency));
    report.Record("serving." + row.model + ".steps",
                  static_cast<double>(row.steps));
  }
  std::printf("%-16s %9lld %7lld %10.3fms %10.3fms\n", "FLEET",
              (long long)res.total_requests, (long long)res.total_steps,
              ToMsD(res.p50_latency), ToMsD(res.p99_latency));
  std::printf(
      "cold replica: %.2fs wall, %lld cold tunes (%.1f ms tuning total, "
      "worst %.1f ms), %lld configs cached\n",
      cold_s, (long long)cold_snap.misses, cold_snap.warm_start_ms,
      cold_snap.max_cold_tune_ms, (long long)cold_snap.entries);

  // Phase 2: warm replica — a new estimator against the populated service.
  // Every lookup must hit, and the simulated serving results must be
  // bitwise identical (cached configs are re-simulated, not re-searched).
  models::E2eEstimator warm(kTp, /*batch=*/1, /*seq=*/1, /*two_node=*/false);
  service.Attach(&warm);
  t0 = std::chrono::steady_clock::now();
  const serving::ServingResult warm_res = serving::RunServing(opts, &warm);
  const double warm_s = Seconds(t0);
  const serving::ConfigService::Snapshot snap = service.Stats();
  const bool warm_identical = warm_res.trace == res.trace;
  const bool no_new_tunes = snap.misses == cold_snap.misses;
  std::printf(
      "warm replica: %.2fs wall (%.1fx cold), hit rate %.2f over both "
      "replicas, results %s, %s\n",
      warm_s, cold_s / std::max(warm_s, 1e-9), snap.hit_rate,
      warm_identical ? "IDENTICAL" : "DIVERGED",
      no_new_tunes ? "no new searches" : "UNEXPECTED cold searches");
  ok = ok && warm_identical && no_new_tunes;

  // Phase 3: independent same-seed run — bitwise trace + cache equality.
  serving::ConfigService service2(
      serving::ConfigService::Options{0, tune_threads, /*laddered=*/true});
  models::E2eEstimator rerun(kTp, /*batch=*/1, /*seq=*/1, /*two_node=*/false);
  service2.Attach(&rerun);
  const serving::ServingResult res2 = serving::RunServing(opts, &rerun);
  const bool deterministic = res2.trace == res.trace &&
                             service2.cache().ToJson() ==
                                 service.cache().ToJson();
  std::printf("same-seed rerun: trace+cache %s\n",
              deterministic ? "IDENTICAL (bitwise)" : "DIVERGED");
  ok = ok && deterministic;

  // Ladder efficiency: rebuild every MLP search the run paid for, laddered
  // vs exhaustive, counting full-fidelity simulator invocations directly.
  const sim::MachineSpec spec = [] {
    sim::MachineSpec s = sim::MachineSpec::H800x8();
    s.num_devices = kTp;
    return s;
  }();
  int64_t ladder_full = 0, ladder_coarse = 0, exhaustive_full = 0;
  bool argmin_match = true;
  tl::Autotuner::Options topts;
  topts.threads = tune_threads;
  const tl::Autotuner tuner(topts);
  const std::vector<MlpKeyShape> shapes =
      MlpShapesFromCache(service.cache());
  for (const MlpKeyShape& ks : shapes) {
    const bool is_ag = ks.kind == "ag_gemm";
    const tl::TuneCandidate seed =
        is_ag ? models::DefaultAgGemmConfig(ks.shape.m, ks.shape.k, kTp)
              : models::DefaultGemmRsConfig(ks.shape.m, ks.shape.k, kTp);
    const tl::TuningSpace space = models::MlpTuningSpaceFor(ks.shape.m, kTp);
    const tl::TuneResult exhaustive = tuner.Search(
        space, seed, [&](const tl::TuneCandidate& c) {
          return is_ag ? tl::SimulateAgGemm(spec, ks.shape, c)
                       : tl::SimulateGemmRs(spec, ks.shape, c);
        });
    const tl::TuneResult ladder = tuner.SearchLaddered(
        space, seed,
        [&](const tl::TuneCandidate& c, int denom) {
          return is_ag ? tl::FidelitySimulateAgGemm(spec, ks.shape, c, denom)
                       : tl::FidelitySimulateGemmRs(spec, ks.shape, c, denom);
        },
        [&](const tl::TuneCandidate& c) {
          return is_ag ? tl::AgGemmLowerBound(spec, ks.shape, c)
                       : tl::GemmRsLowerBound(spec, ks.shape, c);
        });
    // Full-fidelity *feasible* simulations, from the deterministic serial
    // replay (infeasible candidates are rejected by a divisibility
    // pre-check before any DES run, so they cost nothing on either side).
    // These counts are bitwise thread-count-invariant, unlike raw
    // evaluator-call tallies, which would include the parallel pass's
    // timing-dependent speculation. The ladder's final rung serves the
    // seed's cost from the anchor's memo, so the seed's row in `evaluated`
    // already accounts for the anchor sim; only when the bound pruned the
    // seed row does the anchor need counting separately.
    const int64_t ex_evals = static_cast<int64_t>(exhaustive.evaluated.size());
    int64_t lad_full = static_cast<int64_t>(ladder.evaluated.size());
    if (!ladder.evaluated_per_rung.empty()) {
      bool seed_row = false;
      for (const auto& [cand, cost] : ladder.evaluated) {
        if (cand == seed) {
          seed_row = true;
          break;
        }
      }
      if (!seed_row) ++lad_full;  // anchor sim with the seed row pruned
    }
    const int64_t lad_coarse = ladder.coarse_evals;
    if (ladder.best_cost != exhaustive.best_cost) {
      std::printf("  ladder argmin mismatch on %s %lldx%lldx%lld: "
                  "%.3f ms vs exhaustive %.3f ms\n",
                  ks.kind.c_str(), (long long)ks.shape.m,
                  (long long)ks.shape.k, (long long)ks.shape.n,
                  ToMsD(ladder.best_cost), ToMsD(exhaustive.best_cost));
      argmin_match = false;
    }
    ladder_full += lad_full;
    ladder_coarse += lad_coarse;
    exhaustive_full += ex_evals;
  }
  const double ladder_frac =
      exhaustive_full > 0 ? static_cast<double>(ladder_full) /
                                static_cast<double>(exhaustive_full)
                          : 0.0;
  std::printf(
      "ladder efficiency over %zu tuned MLP shapes: %lld full-fidelity sims "
      "(+%lld coarse) vs %lld exhaustive -> %.1f%% (budget %.0f%%), argmin "
      "%s on every shape\n",
      shapes.size(), (long long)ladder_full, (long long)ladder_coarse,
      (long long)exhaustive_full, 100.0 * ladder_frac,
      100.0 * kMaxLadderFrac, argmin_match ? "matched" : "MISSED");

  report.Record("serving.p50_ms", ToMsD(res.p50_latency));
  report.Record("serving.p99_ms", ToMsD(res.p99_latency));
  report.Record("serving.requests", static_cast<double>(res.total_requests));
  report.Record("serving.steps", static_cast<double>(res.total_steps));
  report.Record("serving.cache_hit_rate", snap.hit_rate);
  report.Record("serving.cache_entries",
                static_cast<double>(cold_snap.entries));
  report.Record("serving.cold_tunes", static_cast<double>(cold_snap.misses));
  report.Record("serving.warm_start_ms", cold_snap.warm_start_ms);
  report.Record("serving.cold_tune_max_ms", cold_snap.max_cold_tune_ms);
  report.Record("serving.tuned_speedup", cold_snap.tuned_speedup_geomean);
  report.Record("serving.cold_run_s", cold_s);
  report.Record("serving.warm_run_s", warm_s);
  report.Record("serving.deterministic", deterministic ? 1.0 : 0.0);
  report.Record("serving.ladder_full_evals",
                static_cast<double>(ladder_full));
  report.Record("serving.ladder_coarse_evals",
                static_cast<double>(ladder_coarse));
  report.Record("serving.exhaustive_full_evals",
                static_cast<double>(exhaustive_full));
  report.Record("serving.ladder_eval_frac", ladder_frac);

  if (!report.cache_path().empty() &&
      service.cache().SaveFile(report.cache_path())) {
    std::printf("saved serving config cache to %s\n",
                report.cache_path().c_str());
  }
  report.WriteJson();

  if (ToMsD(res.p99_latency) > kMaxP99Ms) {
    std::printf("\nFAIL: p99 request latency %.1f ms exceeds the %.1f ms "
                "budget.\n",
                ToMsD(res.p99_latency), kMaxP99Ms);
    ok = false;
  }
  if (cold_snap.max_cold_tune_ms > kMaxColdTuneMs) {
    std::printf("\nFAIL: a cold tune took %.1f ms (budget %.1f ms per "
                "unseen shape).\n",
                cold_snap.max_cold_tune_ms, kMaxColdTuneMs);
    ok = false;
  }
  if (snap.hit_rate < kMinHitRate) {
    std::printf("\nFAIL: config-cache hit rate %.2f below the %.2f "
                "threshold.\n",
                snap.hit_rate, kMinHitRate);
    ok = false;
  }
  if (cold_snap.tuned_speedup_geomean < 1.0) {
    std::printf("\nFAIL: tuned configs regressed past their seeds (geomean "
                "%.3fx < 1).\n",
                cold_snap.tuned_speedup_geomean);
    ok = false;
  }
  if (!argmin_match || ladder_frac > kMaxLadderFrac) {
    std::printf("\nFAIL: laddered tuning missed its efficiency/argmin "
                "contract (%.1f%% of exhaustive, argmin %s).\n",
                100.0 * ladder_frac, argmin_match ? "matched" : "missed");
    ok = false;
  }
  if (!ok) std::printf("\nFAIL: serving gates failed.\n");
  return ok ? 0 : 1;
}
