// Ablation (paper §3.1, Figure 2c + §3.2.2): resource mapping and data
// direction. AG+GEMM under SM-pull / SM-push / DMA communication with a
// comm-SM sweep, and GEMM+RS with SM-held vs hybrid-DMA scatter.
#include "bench/bench_common.h"
#include "tilelink/kernels/ag_gemm.h"
#include "tilelink/kernels/gemm_rs.h"

namespace tilelink::bench {
namespace {

double RunAg(tl::CommResource res, int comm_sms) {
  rt::World world = MakeH800x8();
  tl::AgGemmConfig cfg;
  cfg.m = 8192;
  cfg.k = 4096;
  cfg.n = 11008 / 8;
  cfg.gemm = CoarseTiling(cfg.k);
  cfg.comm_tile_m = 128;
  cfg.channels_per_rank = 4;
  cfg.comm = res;
  cfg.comm_sms = comm_sms;
  tl::AgGemm bench(world, cfg);
  return ToMsD(world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); }));
}

double RunRs(bool dma_push, int comm_sms) {
  rt::World world = MakeH800x8();
  tl::GemmRsConfig cfg;
  cfg.m = 8192;
  cfg.k = 11008 / 8;
  cfg.n = 4096;
  cfg.gemm = CoarseTiling(cfg.k);
  cfg.rs_block_m = 128;
  cfg.comm_sms = comm_sms;
  cfg.dma_push = dma_push;
  tl::GemmRs bench(world, cfg);
  return ToMsD(world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); }));
}

}  // namespace
}  // namespace tilelink::bench

int main() {
  using namespace tilelink::bench;
  using tilelink::tl::CommResource;
  std::printf("=== Ablation: AG+GEMM communication resource (MLP-1) ===\n");
  std::printf("%-10s", "comm_sms");
  std::printf("%14s%14s%14s\n", "SM-pull", "SM-push", "DMA");
  for (int sms : {8, 16, 20, 32, 48}) {
    std::printf("%-10d%11.3f ms%11.3f ms", sms,
                RunAg(CommResource::kSmPull, sms),
                RunAg(CommResource::kSmPush, sms));
    if (sms == 8) {
      std::printf("%11.3f ms\n", RunAg(CommResource::kDma, sms));
    } else {
      std::printf("%14s\n", "(n/a)");
    }
  }
  std::printf("\n=== Ablation: GEMM+RS scatter mapping (MLP-1 part 2) ===\n");
  std::printf("%-10s%16s%16s\n", "comm_sms", "SM-held push", "hybrid DMA");
  for (int sms : {8, 16, 20, 32}) {
    std::printf("%-10d%13.3f ms%13.3f ms\n", sms, RunRs(false, sms),
                RunRs(true, sms));
  }
  std::printf(
      "\nDMA frees all SMs for compute but runs below link peak and pays "
      "host latencies; SM mapping steals compute cores but reacts per tile. "
      "Hybrid (reduce on SMs, scatter on DMA) wins for GEMM+RS — the mapping "
      "the paper reports for TileLink's best result.\n");
  return 0;
}
