// Microbenchmarks of the simulator substrate itself: event-loop throughput,
// host-callback scheduling, resource contention, network flows, and an
// end-to-end overlapped kernel (wall-clock cost of simulating one AG+GEMM).
// Built on the vendored harness in bench/microbench.h (Google Benchmark API
// subset) so it always compiles without external dependencies.
#include "bench/microbench.h"

#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "comm/collectives.h"
#include "sim/flag.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "tilelink/kernels/ag_gemm.h"

namespace tilelink {
namespace {

sim::Coro Ping(sim::TimeNs step, int count) {
  for (int i = 0; i < count; ++i) {
    co_await sim::Delay{step};
  }
}

void BM_EventLoop(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    s.Spawn(Ping(10, events));
    s.Run();
    benchmark::DoNotOptimize(s.processed_events());
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventLoop)->Arg(1000)->Arg(100000);

// Aggregate event throughput of N independent simulators on N threads —
// the execution shape of the parallel autotuner (one private World per
// worker, zero shared mutable state). items/s is the *aggregate* events/s
// across all threads, directly comparable to the single-thread BM_EventLoop
// baseline; near-linear scaling here means candidate evaluation shards
// without the simulators contending on anything.
void BM_EventLoopThreaded(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr int kEvents = 100000;
  for (auto _ : state) {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(threads - 1));
    for (int t = 1; t < threads; ++t) {
      pool.emplace_back([] {
        sim::Simulator s;
        s.Spawn(Ping(10, kEvents));
        s.Run();
        benchmark::DoNotOptimize(s.processed_events());
      });
    }
    sim::Simulator s;
    s.Spawn(Ping(10, kEvents));
    s.Run();
    for (std::thread& th : pool) th.join();
    benchmark::DoNotOptimize(s.processed_events());
  }
  state.SetItemsProcessed(state.iterations() * threads * kEvents);
}
BENCHMARK(BM_EventLoopThreaded)->Arg(1)->Arg(2)->Arg(8);

void BM_HostCallbacks(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    uint64_t sum = 0;
    for (int i = 0; i < events; ++i) {
      s.At(i, [&sum, i] { sum += static_cast<uint64_t>(i); });
    }
    s.Run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_HostCallbacks)->Arg(1000)->Arg(100000);

sim::Coro UseRes(sim::Resource* res) {
  co_await res->Acquire();
  co_await sim::Delay{5};
  res->Release();
}

void BM_ResourceContention(benchmark::State& state) {
  const int waiters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    sim::Resource res(&s, 4, "r");
    for (int i = 0; i < waiters; ++i) s.Spawn(UseRes(&res));
    s.Run();
  }
  state.SetItemsProcessed(state.iterations() * waiters);
}
BENCHMARK(BM_ResourceContention)->Arg(128)->Arg(4096);

sim::Coro OneFlow(sim::Network* net, int src, int dst) {
  co_await net->Transfer(src, dst, 1 << 20);
}

void BM_NetworkFlows(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    sim::Network net(&s, 8, 150.0, 2200, "nvl");
    for (int i = 0; i < flows; ++i) {
      s.Spawn(OneFlow(&net, i % 8, (i + 1) % 8));
    }
    s.Run();
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_NetworkFlows)->Arg(64)->Arg(512);

void BM_SimulateAgGemmMlp1(benchmark::State& state) {
  for (auto _ : state) {
    rt::World world(sim::MachineSpec::H800x8(), rt::ExecMode::kTimingOnly);
    tl::AgGemmConfig cfg;
    cfg.m = 8192;
    cfg.k = 4096;
    cfg.n = 11008 / 8;
    cfg.gemm = bench::CoarseTiling(cfg.k);
    cfg.channels_per_rank = 4;
    cfg.comm = tl::CommResource::kDma;
    tl::AgGemm kernel(world, cfg);
    const sim::TimeNs t = world.RunSpmd(
        [&](rt::RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });
    benchmark::DoNotOptimize(t);
    state.counters["sim_ms"] = static_cast<double>(t) / 1e6;
    state.counters["events"] =
        static_cast<double>(world.sim().processed_events());
  }
}
BENCHMARK(BM_SimulateAgGemmMlp1)->Unit(benchmark::kMillisecond);

void BM_SimulateAllGather8(benchmark::State& state) {
  for (auto _ : state) {
    rt::World world(sim::MachineSpec::H800x8(), rt::ExecMode::kTimingOnly);
    comm::SymTensor shards, outs;
    for (int r = 0; r < 8; ++r) {
      shards.push_back(Tensor::Alloc(world.device(r), "s", {1024, 4096},
                                     DType::kBF16));
      outs.push_back(Tensor::Alloc(world.device(r), "o", {8192, 4096},
                                   DType::kBF16));
    }
    const sim::TimeNs t =
        world.RunSpmd([&](rt::RankCtx& ctx) -> sim::Coro {
          co_await comm::AllGather(ctx, shards, outs);
        });
    benchmark::DoNotOptimize(t);
    state.counters["sim_ms"] = static_cast<double>(t) / 1e6;
  }
}
BENCHMARK(BM_SimulateAllGather8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tilelink

BENCHMARK_MAIN();
