// Ablation (paper §3.1, Figure 2a): decoupled tile sizes. Sweeps the
// communication tile independently of the (fixed) GEMM tile for SM-pull
// AG+GEMM — the decoupled optimum differs from the coupled choice — and
// shows the effect of forcing comm tile == GEMM tile (FLUX-style coupling).
#include "bench/bench_common.h"
#include "tilelink/kernels/ag_gemm.h"

namespace tilelink::bench {
namespace {

double Run(int comm_tile_m, int comm_sms) {
  rt::World world = MakeH800x8();
  tl::AgGemmConfig cfg;
  cfg.m = 8192;
  cfg.k = 4096;
  cfg.n = 11008 / 8;
  cfg.gemm = CoarseTiling(cfg.k);
  cfg.comm_tile_m = comm_tile_m;
  cfg.comm = tl::CommResource::kSmPull;
  cfg.comm_sms = comm_sms;
  tl::AgGemm bench(world, cfg);
  return ToMsD(world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); }));
}

}  // namespace
}  // namespace tilelink::bench

int main() {
  using namespace tilelink::bench;
  std::printf("=== Ablation: communication tile size (AG+GEMM MLP-1, SM-pull, "
              "GEMM tile fixed at 128x256) ===\n");
  std::printf("%-14s %-10s %s\n", "comm_tile_m", "comm_sms", "time");
  for (int comm_sms : {8, 20, 32}) {
    for (int tile : {64, 128, 256, 512, 1024}) {
      std::printf("%-14d %-10d %8.3f ms%s\n", tile, comm_sms,
                  Run(tile, comm_sms),
                  tile == 128 && comm_sms == 20 ? "   <- default" : "");
    }
  }
  std::printf(
      "\nSmaller comm tiles release consumer barriers sooner (better overlap)"
      " but pay more per-message latency; more comm SMs want smaller tiles "
      "to stay busy (paper §3.1: tile size must match the cores assigned).\n");
  return 0;
}
