// Ablation (paper §3.1, Figure 2a): decoupled tile sizes. Sweeps the
// communication tile independently of the (fixed) GEMM tile for SM-pull
// AG+GEMM via TuningSpace/Autotuner — the decoupled optimum differs from
// the coupled choice — and shows the effect of forcing comm tile == GEMM
// tile (FLUX-style coupling).
#include "bench/bench_common.h"
#include "tilelink/builder/kernel_tuning.h"

int main() {
  using namespace tilelink;
  using namespace tilelink::bench;
  const sim::MachineSpec spec = sim::MachineSpec::H800x8();
  const tl::MlpPartShape shape{8192, 4096, 11008 / 8};

  tl::TuneCandidate base;
  base.gemm = CoarseTiling(shape.k);
  base.comm = tl::CommResource::kSmPull;
  base.order = tl::TileOrder::kOwnerFirst;

  std::printf("=== Ablation: communication tile size (AG+GEMM MLP-1, SM-pull, "
              "GEMM tile fixed at %dx%d) ===\n", base.gemm.bm, base.gemm.bn);
  // The sweep the paper plots: comm tile x comm SMs, every candidate scored
  // by the simulator (one [tune] line each).
  tl::TuningSpace space;
  space.CommTileM({64, 128, 256, 512, 1024}).CommSms({8, 20, 32});
  tl::Autotuner::Options opts;
  opts.verbose = true;
  const tl::TuneResult result =
      tl::TuneAgGemm(spec, shape, space, base, tl::Autotuner(opts));
  std::printf("\ndecoupled optimum: %s  %.3f ms\n",
              result.best.Describe().c_str(),
              static_cast<double>(result.best_cost) / 1e6);

  // FLUX-style coupling: comm tile forced equal to the GEMM m-tile.
  tl::TuneCandidate coupled = base;
  coupled.comm_tile_m = base.gemm.bm;
  coupled.comm_sms = result.best.comm_sms;
  const sim::TimeNs coupled_cost = tl::SimulateAgGemm(spec, shape, coupled);
  std::printf("coupled (comm tile == GEMM tile %d): %.3f ms  (%.2fx of "
              "decoupled optimum)\n",
              base.gemm.bm, static_cast<double>(coupled_cost) / 1e6,
              static_cast<double>(coupled_cost) /
                  static_cast<double>(result.best_cost));
  std::printf(
      "\nSmaller comm tiles release consumer barriers sooner (better overlap)"
      " but pay more per-message latency; more comm SMs want smaller tiles "
      "to stay busy (paper §3.1: tile size must match the cores assigned).\n");
  return 0;
}
