// Figure 8 + Table 2: tensor-parallel MLP on 8xH800 — AG+GEMM, GEMM+RS and
// the full MLP layer, for cuBLAS+NCCL (non-overlap), Async-TP (operator
// decomposition), FLUX (coupled fusion) and TileLink.
//
// `--trace <path>` re-runs the first shape's TileLink GEMM+RS with a
// TraceRecorder attached and saves the timeline (per-op compute/comm spans
// from the device programs plus link/wire spans) as chrome-trace JSON.
#include <algorithm>

#include "baselines/flux_baselines.h"
#include "baselines/mlp_baselines.h"
#include "bench/bench_common.h"
#include "bench/bench_shapes.h"
#include "compute/memops.h"
#include "sim/trace.h"
#include "tilelink/builder/kernel_tuning.h"
#include "tilelink/kernels/ag_gemm.h"
#include "tilelink/kernels/gemm_rs.h"

namespace tilelink::bench {
namespace {

int RsBlock(int64_t m_per_rank, int bm) {
  int64_t chunk = std::max<int64_t>(bm, (m_per_rank / 8) - (m_per_rank / 8) % bm);
  while (m_per_rank % chunk != 0) chunk -= bm;
  return static_cast<int>(std::max<int64_t>(bm, chunk));
}

// ---- AG + GEMM (m = tokens, k = hidden, n = intermediate / R) -----------

double AgGemmNonOverlap(int64_t m, int64_t k, int64_t n) {
  rt::World world = MakeH800x8();
  baselines::MlpPartConfig cfg{m, k, n, CoarseTiling(k)};
  baselines::NonOverlapAgGemm bench(world, cfg);
  return ToMsD(world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); }));
}

double AgGemmDecompose(int64_t m, int64_t k, int64_t n) {
  rt::World world = MakeH800x8();
  baselines::MlpPartConfig cfg{m, k, n, CoarseTiling(k)};
  baselines::DecomposeAgGemm bench(world, cfg);
  return ToMsD(world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); }));
}

double AgGemmFlux(int64_t m, int64_t k, int64_t n) {
  rt::World world = MakeH800x8();
  baselines::FluxConfig cfg{m, k, n, CoarseTiling(k)};
  baselines::FluxAgGemm bench(world, cfg);
  return ToMsD(world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); }));
}

double AgGemmTileLink(int64_t m, int64_t k, int64_t n) {
  rt::World world = MakeH800x8();
  tl::AgGemmConfig cfg;
  cfg.m = m;
  cfg.k = k;
  cfg.n = n;
  cfg.gemm = CoarseTiling(k);
  cfg.comm_tile_m = 128;
  cfg.channels_per_rank = 4;
  cfg.comm = tl::CommResource::kDma;  // the mapping the paper's kernel uses
  tl::AgGemm bench(world, cfg);
  return ToMsD(world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); }));
}

// ---- GEMM + RS (m = tokens, k = intermediate / R, n = hidden) -----------

double GemmRsNonOverlap(int64_t m, int64_t k, int64_t n) {
  rt::World world = MakeH800x8();
  baselines::MlpPartConfig cfg{m, k, n, CoarseTiling(k)};
  baselines::NonOverlapGemmRs bench(world, cfg);
  return ToMsD(world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); }));
}

double GemmRsDecompose(int64_t m, int64_t k, int64_t n) {
  rt::World world = MakeH800x8();
  baselines::MlpPartConfig cfg{m, k, n, CoarseTiling(k)};
  baselines::DecomposeGemmRs bench(world, cfg);
  return ToMsD(world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); }));
}

double GemmRsFlux(int64_t m, int64_t k, int64_t n) {
  rt::World world = MakeH800x8();
  baselines::FluxConfig cfg{m, k, n, CoarseTiling(k)};
  baselines::FluxGemmRs bench(world, cfg);
  return ToMsD(world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); }));
}

double GemmRsTileLink(int64_t m, int64_t k, int64_t n) {
  rt::World world = MakeH800x8();
  tl::GemmRsConfig cfg;
  cfg.m = m;
  cfg.k = k;
  cfg.n = n;
  cfg.gemm = CoarseTiling(k);
  cfg.rs_block_m = RsBlock(m / world.size(), cfg.gemm.bm);
  cfg.dma_push = true;  // hybrid: reduce on SMs, scatter on copy engines
  tl::GemmRs bench(world, cfg);
  return ToMsD(world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); }));
}

void PrintTuneStats(const char* label, double default_ms,
                    const tl::TuneResult& r) {
  std::printf("%s  default %.3f ms -> tuned %.3f ms  [%s]\n"
              "         (%d coarse-scored, %d halved, %zu simulated, %d "
              "pruned by cost model, %d infeasible)\n",
              label, default_ms, static_cast<double>(r.best_cost) / 1e6,
              r.best.Describe().c_str(), r.coarse_evals, r.halved,
              r.evaluated.size(), r.pruned, r.infeasible);
}

// Autotuned TileLink on one shape: search the §3.1 design space with
// successive halving (coarse simulation round, survivors re-run at full
// fidelity) plus the overlap-aware lower bounds, and compare against the
// hand-picked default config. Returns false (regression) when the tuned
// config loses to the default. Also reruns each search with only the
// overlap-aware bound (no communication-optimal floors) to report how many
// extra candidates the floors prune.
bool TuneMlp1(const MlpShape& s, double ag_default_ms, double rs_default_ms,
              BenchReport* report) {
  const sim::MachineSpec spec = sim::MachineSpec::H800x8();
  const int R = spec.num_devices;
  std::printf("\n=== Autotuned TileLink (%s, TuningSpace::Mlp) ===\n",
              s.name.c_str());

  tl::TuneCandidate ag_base;
  ag_base.gemm = CoarseTiling(s.h);
  ag_base.comm = tl::CommResource::kDma;
  const tl::MlpPartShape ag_shape{s.s, s.h, s.i / R};
  const tl::TuneResult ag = tl::TuneAgGemm(spec, ag_shape,
                                           tl::TuningSpace::Mlp(), ag_base);
  PrintTuneStats("AG+GEMM", ag_default_ms, ag);

  tl::TuneCandidate rs_base;
  rs_base.gemm = CoarseTiling(s.i / R);
  rs_base.comm = tl::CommResource::kDma;  // hybrid push
  const tl::MlpPartShape rs_shape{s.s, s.i / R, s.h};
  const tl::TuneResult rs = tl::TuneGemmRs(spec, rs_shape,
                                           tl::TuningSpace::Mlp(), rs_base);
  PrintTuneStats("GEMM+RS", rs_default_ms, rs);

  // Floor ablation: the same searches WITHOUT coarse halving (so the bound
  // prunes the whole enumerated space), composed bound vs the pre-floor
  // overlap bound alone. The delta in pruned counts is the work the
  // communication-optimal floors save.
  const tl::Autotuner tuner;
  const tl::TuneResult ag_f = tuner.Search(
      tl::TuningSpace::Mlp(), ag_base,
      [&](const tl::TuneCandidate& c) {
        return tl::SimulateAgGemm(spec, ag_shape, c);
      },
      [&](const tl::TuneCandidate& c) {
        return tl::AgGemmLowerBound(spec, ag_shape, c);
      });
  const tl::TuneResult ag_nf = tuner.Search(
      tl::TuningSpace::Mlp(), ag_base,
      [&](const tl::TuneCandidate& c) {
        return tl::SimulateAgGemm(spec, ag_shape, c);
      },
      [&](const tl::TuneCandidate& c) {
        return tl::AgGemmOverlapBound(spec, ag_shape, c);
      });
  const tl::TuneResult rs_f = tuner.Search(
      tl::TuningSpace::Mlp(), rs_base,
      [&](const tl::TuneCandidate& c) {
        return tl::SimulateGemmRs(spec, rs_shape, c);
      },
      [&](const tl::TuneCandidate& c) {
        return tl::GemmRsLowerBound(spec, rs_shape, c);
      });
  const tl::TuneResult rs_nf = tuner.Search(
      tl::TuningSpace::Mlp(), rs_base,
      [&](const tl::TuneCandidate& c) {
        return tl::SimulateGemmRs(spec, rs_shape, c);
      },
      [&](const tl::TuneCandidate& c) {
        return tl::GemmRsOverlapBound(spec, rs_shape, c);
      });
  const int ag_extra = ag_f.pruned - ag_nf.pruned;
  const int rs_extra = rs_f.pruned - rs_nf.pruned;
  std::printf("comm-optimal floors (no-halving ablation): AG+GEMM pruned "
              "%d/%d (overlap bound alone %d, %+d), GEMM+RS pruned %d/%d "
              "(overlap bound alone %d, %+d)\n",
              ag_f.pruned, ag_f.pruned + static_cast<int>(ag_f.evaluated.size()),
              ag_nf.pruned, ag_extra, rs_f.pruned,
              rs_f.pruned + static_cast<int>(rs_f.evaluated.size()),
              rs_nf.pruned, rs_extra);

  report->Record("fig8.tuned." + s.name + ".ag_ms",
                 static_cast<double>(ag.best_cost) / 1e6);
  report->Record("fig8.tuned." + s.name + ".rs_ms",
                 static_cast<double>(rs.best_cost) / 1e6);
  report->Record("fig8.tuned." + s.name + ".skipped",
                 ag.halved + ag.pruned + rs.halved + rs.pruned);
  report->Record("fig8.tuned." + s.name + ".ag_floor_extra_pruned", ag_extra);
  report->Record("fig8.tuned." + s.name + ".rs_floor_extra_pruned", rs_extra);
  const bool ok = static_cast<double>(ag.best_cost) / 1e6 <= ag_default_ms &&
                  static_cast<double>(rs.best_cost) / 1e6 <= rs_default_ms;
  std::printf("tuned <= default: %s\n", ok ? "YES" : "NO (regression!)");
  // The halving/bound machinery must actually skip work at this scale
  // (the naive additive bounds pruned 0/70 here).
  const int skipped = ag.halved + ag.pruned + rs.halved + rs.pruned;
  std::printf("candidates skipped without a full-fidelity run: %d\n", skipped);
  return ok && skipped > 0;
}

// One representative TileLink GEMM+RS run re-recorded with the fabric
// timeline attached (--trace <path>). The recorder must be wired into the
// World before the kernel is constructed; tracing never changes the
// simulated makespan (pinned by tests/test_trace.cc).
void SaveGemmRsTrace(const MlpShape& s, const std::string& path) {
  sim::TraceRecorder rec;
  rt::World world = MakeH800x8();
  world.set_trace(&rec, /*pid_base=*/0, "gemm_rs");
  const int R = world.size();
  tl::GemmRsConfig cfg;
  cfg.m = s.s;
  cfg.k = s.i / R;
  cfg.n = s.h;
  cfg.gemm = CoarseTiling(s.i / R);
  cfg.rs_block_m = RsBlock(s.s / R, cfg.gemm.bm);
  cfg.dma_push = true;
  tl::GemmRs bench(world, cfg);
  world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); });
  rec.Save(path);
  std::printf("trace: wrote %s (%zu events)\n", path.c_str(), rec.size());
}

double ActivationMs(int64_t m, int64_t n) {
  sim::MachineSpec spec = sim::MachineSpec::H800x8();
  const sim::CostModel cost(spec);
  return ToMsD(cost.MemoryBound(3ULL * static_cast<uint64_t>(m) * n * 2,
                                spec.sms_per_device) +
               spec.kernel_launch_latency);
}

}  // namespace
}  // namespace tilelink::bench

int main(int argc, char** argv) {
  using namespace tilelink::bench;
  BenchReport report(argc, argv);
  const int R = 8;
  const std::vector<std::string> methods = {"cuBLAS+NCCL", "AsyncTP", "FLUX",
                                            "TileLink"};
  ResultTable ag("Figure 8a: AG+GEMM on 8xH800 (TP=8)", methods);
  ResultTable rs("Figure 8b: GEMM+RS on 8xH800 (TP=8)", methods);
  ResultTable full("Figure 8c: full MLP layer on 8xH800 (TP=8)", methods);

  for (const MlpShape& s : Table4Mlp()) {
    const int64_t n1 = s.i / R;  // AG+GEMM: H -> I/R
    const int64_t k2 = s.i / R;  // GEMM+RS: I/R -> H
    const double ag_no = AgGemmNonOverlap(s.s, s.h, n1);
    const double ag_dec = AgGemmDecompose(s.s, s.h, n1);
    const double ag_flux = AgGemmFlux(s.s, s.h, n1);
    const double ag_tl = AgGemmTileLink(s.s, s.h, n1);
    ag.Add(s.name, "cuBLAS+NCCL", ag_no);
    ag.Add(s.name, "AsyncTP", ag_dec);
    ag.Add(s.name, "FLUX", ag_flux);
    ag.Add(s.name, "TileLink", ag_tl);

    const double rs_no = GemmRsNonOverlap(s.s, k2, s.h);
    const double rs_dec = GemmRsDecompose(s.s, k2, s.h);
    const double rs_flux = GemmRsFlux(s.s, k2, s.h);
    const double rs_tl = GemmRsTileLink(s.s, k2, s.h);
    rs.Add(s.name, "cuBLAS+NCCL", rs_no);
    rs.Add(s.name, "AsyncTP", rs_dec);
    rs.Add(s.name, "FLUX", rs_flux);
    rs.Add(s.name, "TileLink", rs_tl);

    const double act = ActivationMs(s.s, s.i / R);
    full.Add(s.name, "cuBLAS+NCCL", ag_no + act + rs_no);
    full.Add(s.name, "AsyncTP", ag_dec + act + rs_dec);
    full.Add(s.name, "FLUX", ag_flux + act + rs_flux);
    full.Add(s.name, "TileLink", ag_tl + act + rs_tl);
  }
  ag.Print("cuBLAS+NCCL");
  rs.Print("cuBLAS+NCCL");
  full.Print("cuBLAS+NCCL");
  ag.Export(&report, "fig8.ag", "cuBLAS+NCCL");
  rs.Export(&report, "fig8.rs", "cuBLAS+NCCL");
  full.Export(&report, "fig8.mlp", "cuBLAS+NCCL");

  bool tuned_ok = false;
  {
    const MlpShape s = Table4Mlp().front();
    tuned_ok = TuneMlp1(s, AgGemmTileLink(s.s, s.h, s.i / R),
                        GemmRsTileLink(s.s, s.i / R, s.h), &report);
  }
  if (!report.trace_path().empty()) {
    SaveGemmRsTrace(Table4Mlp().front(), report.trace_path());
  }
  report.WriteJson();

  std::printf(
      "\nPaper reference (Fig 8 geomeans vs cuBLAS+NCCL): AG+GEMM — FLUX "
      "1.34x, TileLink 1.27x (94.5%% of FLUX), AsyncTP <1x; GEMM+RS — "
      "TileLink 1.25x (1.28x vs FLUX, 2.22x vs AsyncTP); full MLP — TileLink "
      "1.24x (101.4%% of FLUX).\n");
  // Nonzero exit on tuner regression so scripts can gate on this bench.
  return tuned_ok ? 0 : 1;
}
