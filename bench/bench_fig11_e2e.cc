// Figure 11: end-to-end LLM comparison (TileLink vs PyTorch) on 8xH800
// (TP=8, batch 4, seq 8192) and 16xH800 (TP=8 x DP=2, batch 8).
//
// Every TileLink kernel config is obtained from Autotuner::Search through a
// per-shape TunedConfigCache (identical layers and identical shapes across
// models — and across the two node configurations — share one search). The
// hand-picked configs of the paper's figures are simulated alongside as the
// search seeds: the bench exits nonzero if any tuned layer regresses past
// its hand-picked default (MoE layers get a 1% interaction tolerance — the
// two MoE parts are tuned in isolation but timed chained per rank).
//
// The 16xH800 section's inter-node DP sync is *simulated* (tile-granular
// gradient AllReduce over the NIC fabric, tilelink/multinode) — the bench
// exits nonzero if the emergent speedup dilution leaves the ballpark of the
// paper's 1.32x -> 1.29x.
//
// Flags: --cache <path> warm-starts / persists the tuned-config cache;
// --json <path> writes per-model latencies/speedups, the per-layer
// component breakdown (attn / ffn / dp-sync) and the geomeans.
#include <cmath>

#include "bench/bench_common.h"
#include "models/transformer.h"

namespace {

struct SectionResult {
  double geomean = 0.0;
  double dense_geomean = 0.0;
  double moe_geomean = 0.0;
  bool ok = true;
};

// Emergent-dilution ballpark: the two-node geomean must sit below the
// single-node one (the NIC sync is real) but not crater it. The paper
// measures 1.32x -> 1.29x (ratio ~1.023); the reproduction's simulated
// flows land near 1.06 — gate loosely around both.
constexpr double kMinDilution = 1.005;
constexpr double kMaxDilution = 1.15;

SectionResult RunSection(bool two_node, tilelink::tl::TunedConfigCache* cache,
                         tilelink::bench::BenchReport* report) {
  using namespace tilelink;
  using namespace tilelink::bench;
  const int64_t batch = two_node ? 8 : 4;  // paper doubles batch on 2 nodes
  const int64_t local_batch = two_node ? batch / 2 : batch;
  models::E2eEstimator defaults(/*tp=*/8, local_batch, /*seq=*/8192, two_node);
  models::E2eEstimator tuned(/*tp=*/8, local_batch, /*seq=*/8192, two_node);
  tuned.EnableTuning(cache);
  const std::string section = two_node ? "16xH800" : "8xH800";
  std::printf("\n=== Figure 11: end-to-end, %s (batch %lld, seq 8192) ===\n",
              two_node ? "16xH800 (TP8 x DP2)" : "8xH800 (TP8)",
              (long long)batch);
  std::printf("%-16s %13s %13s %13s %9s %9s\n", "model", "Torch layer",
              "TL default", "TL tuned", "speedup", "vs deflt");
  SectionResult out;
  double log_sum = 0.0, dense_log = 0.0, moe_log = 0.0;
  int dense_n = 0, moe_n = 0;
  std::vector<models::E2eResult> rows;
  for (const models::ModelConfig& m : models::Figure11Models()) {
    const models::E2eResult tun = tuned.Run(m);
    // Only the TileLink layer is needed from the defaults estimator (its
    // Torch side would re-simulate the exact layers `tuned` already ran);
    // LayerTime includes the default-config DP sync on two nodes.
    const sim::TimeNs def_layer =
        defaults.LayerTime(m, models::Method::kTileLink).total();
    const double vs_default = static_cast<double>(def_layer) /
                              static_cast<double>(tun.tilelink_layer);
    // Regression gate: the searches are seeded with the hand-picked configs,
    // so a tuned component can never lose to its default in isolation; MoE
    // layers chain two independently-tuned kernels per rank and get 1%.
    const double tolerance = m.is_moe ? 1.01 : 1.0;
    const bool ok = static_cast<double>(tun.tilelink_layer) <=
                    static_cast<double>(def_layer) * tolerance;
    out.ok = out.ok && ok;
    std::printf("%-16s %11.3fms %11.3fms %11.3fms %8.2fx %8.2fx%s\n",
                tun.model.c_str(), ToMsD(tun.torch_layer), ToMsD(def_layer),
                ToMsD(tun.tilelink_layer), tun.speedup, vs_default,
                ok ? "" : "  <- REGRESSION");
    log_sum += std::log(tun.speedup);
    if (m.is_moe) {
      moe_log += std::log(tun.speedup);
      ++moe_n;
    } else {
      dense_log += std::log(tun.speedup);
      ++dense_n;
    }
    const std::string prefix = "fig11." + section + "." + m.name;
    report->Record(prefix + ".torch_ms", ToMsD(tun.torch_layer));
    report->Record(prefix + ".tilelink_default_ms", ToMsD(def_layer));
    report->Record(prefix + ".tilelink_tuned_ms", ToMsD(tun.tilelink_layer));
    report->Record(prefix + ".speedup", tun.speedup);
    // Per-layer component breakdown (attn / ffn / simulated dp-sync).
    report->Record(prefix + ".attn_ms", ToMsD(tun.tilelink_breakdown.attn_block));
    report->Record(prefix + ".ffn_ms", ToMsD(tun.tilelink_breakdown.ffn_block));
    report->Record(prefix + ".torch_attn_ms",
                   ToMsD(tun.torch_breakdown.attn_block));
    report->Record(prefix + ".torch_ffn_ms",
                   ToMsD(tun.torch_breakdown.ffn_block));
    if (two_node) {
      report->Record(prefix + ".dp_sync_ms",
                     ToMsD(tun.tilelink_breakdown.dp_sync));
    }
    rows.push_back(tun);
  }
  out.geomean = std::exp(log_sum / (dense_n + moe_n));
  out.dense_geomean = std::exp(dense_log / dense_n);
  out.moe_geomean = std::exp(moe_log / moe_n);
  std::printf("%-16s %39s %8.2fx\n", "GEOMEAN", "", out.geomean);
  std::printf("  dense geomean %.2fx, MoE geomean %.2fx\n", out.dense_geomean,
              out.moe_geomean);
  report->Record("fig11." + section + ".geomean", out.geomean);
  report->Record("fig11." + section + ".dense_geomean", out.dense_geomean);
  report->Record("fig11." + section + ".moe_geomean", out.moe_geomean);
  if (two_node) {
    // Per-layer component table: where the tuned layer's time goes and what
    // the simulated NIC gradient sync costs each model.
    std::printf("\n-- per-layer breakdown, %s (TileLink tuned) --\n",
                section.c_str());
    std::printf("%-16s %11s %11s %11s %9s\n", "model", "attn", "ffn",
                "dp sync", "dp share");
    for (const models::E2eResult& tun : rows) {
      const models::LayerBreakdown& b = tun.tilelink_breakdown;
      std::printf("%-16s %9.3fms %9.3fms %9.3fms %8.1f%%\n",
                  tun.model.c_str(), ToMsD(b.attn_block), ToMsD(b.ffn_block),
                  ToMsD(b.dp_sync),
                  100.0 * static_cast<double>(b.dp_sync) /
                      static_cast<double>(b.total()));
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tilelink;
  using namespace tilelink::bench;
  BenchReport report(argc, argv);
  tl::TunedConfigCache cache;
  if (!report.cache_path().empty() && cache.LoadFile(report.cache_path())) {
    // Both sections tune on H800-constant specs, so one calibration hash
    // covers every key; entries from older calibrations are unreachable.
    const std::size_t stale = cache.PruneStaleCalibration(
        tl::CostCalibrationHash(sim::MachineSpec::H800x8()));
    std::printf("warm-started %zu tuned configs from %s (%zu stale pruned)\n",
                cache.size(), report.cache_path().c_str(), stale);
  }
  const SectionResult one = RunSection(false, &cache, &report);
  const SectionResult two = RunSection(true, &cache, &report);
  std::printf(
      "\ntuner cache: %zu entries, %d search hits, %d searches run\n",
      cache.size(), cache.hits(), cache.misses());
  if (!report.cache_path().empty() && cache.SaveFile(report.cache_path())) {
    std::printf("saved tuned-config cache to %s\n",
                report.cache_path().c_str());
  }
  // Paper reference (Fig 11): geomeans vs the Torch baseline.
  const double paper_8x = 1.32, paper_8x_dense = 1.20, paper_8x_moe = 1.54;
  const double paper_16x = 1.29;
  std::printf(
      "\nPaper reference (Fig 11): 8xH800 geomean %.2fx (dense %.2fx, MoE "
      "%.2fx); 16xH800 geomean %.2fx.\n",
      paper_8x, paper_8x_dense, paper_8x_moe, paper_16x);
  std::printf(
      "This reproduction (tuned): 8xH800 %.2fx (%.0f%% of paper; dense "
      "%.2fx, MoE %.2fx); 16xH800 %.2fx (%.0f%% of paper).\n",
      one.geomean, 100.0 * one.geomean / paper_8x, one.dense_geomean,
      one.moe_geomean, two.geomean, 100.0 * two.geomean / paper_16x);
  report.Record("fig11.8xH800.geomean_vs_paper", one.geomean / paper_8x);
  report.Record("fig11.16xH800.geomean_vs_paper", two.geomean / paper_16x);
  // Emergent dilution: the two-node geomean relative to the single-node one
  // now comes from simulated NIC flows, so gate it against the paper's
  // ballpark instead of asserting it.
  const double dilution = one.geomean / two.geomean;
  std::printf(
      "Simulated dilution: %.3fx (paper %.3fx; accepted band %.3f..%.3f).\n",
      dilution, paper_8x / paper_16x, kMinDilution, kMaxDilution);
  report.Record("fig11.dilution", dilution);
  report.WriteJson();
  bool ok = one.ok && two.ok;
  if (dilution < kMinDilution || dilution > kMaxDilution) {
    std::printf("\nFAIL: simulated two-node dilution %.3fx left the paper's "
                "ballpark [%.3f, %.3f].\n",
                dilution, kMinDilution, kMaxDilution);
    ok = false;
  }
  if (!(one.ok && two.ok)) {
    std::printf("\nFAIL: a tuned config regressed past its hand-picked "
                "default.\n");
  }
  return ok ? 0 : 1;
}
