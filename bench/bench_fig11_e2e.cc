// Figure 11: end-to-end LLM comparison (TileLink vs PyTorch) on 8xH800
// (TP=8, batch 4, seq 8192) and 16xH800 (TP=8 x DP=2, batch 8).
//
// Every TileLink kernel config is obtained from Autotuner::Search through a
// per-shape TunedConfigCache (identical layers and identical shapes across
// models — and across the two node configurations — share one search). The
// hand-picked configs of the paper's figures are simulated alongside as the
// search seeds: the bench exits nonzero if any tuned layer regresses past
// its hand-picked default (MoE layers get a 1% interaction tolerance — the
// two MoE parts are tuned in isolation but timed chained per rank).
//
// The 16xH800 section's inter-node DP sync is *simulated* (tile-granular
// gradient AllReduce over the NIC fabric, tilelink/multinode) — the bench
// exits nonzero if the emergent speedup dilution leaves the ballpark of the
// paper's 1.32x -> 1.29x.
//
// Parallel tuning: before the sections run, the full cold tuning sweep
// (every search both sections need, on fresh caches) is executed twice —
// serially and with --tune-threads workers — and the bench exits nonzero
// unless the two produce bitwise-identical cache contents and layer times
// (the autotuner's determinism guarantee, gated end-to-end). Cold and warm
// sweep wall-clocks land in the JSON report.
//
// Flags: --cache <path> warm-starts / persists the tuned-config cache;
// --tune-threads <n> sets the parallel sweep's worker count (default 4);
// --json <path> writes per-model latencies/speedups, the per-layer
// component breakdown (attn / ffn / dp-sync), the geomeans and the tuner
// wall-clocks. --trace <path> records the 16xH800 section's simulated NIC
// gradient sync (the tile-granular DP AllReduce) as a chrome-trace
// timeline and saves it there.
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <string>

#include "bench/bench_common.h"
#include "models/transformer.h"
#include "sim/trace.h"
#include "tilelink/multinode/payload_validation.h"

namespace {

struct SectionResult {
  double geomean = 0.0;
  double dense_geomean = 0.0;
  double moe_geomean = 0.0;
  bool ok = true;
};

// Emergent-dilution ballpark: the two-node geomean must sit below the
// single-node one (the NIC sync is real) but not crater it. The paper
// measures 1.32x -> 1.29x (ratio ~1.023); the reproduction's simulated
// flows land near 1.06 — gate loosely around both.
constexpr double kMinDilution = 1.005;
constexpr double kMaxDilution = 1.15;

// Runs every tuned TileLink layer both sections time (8x and 16xH800, all
// Figure-11 models) against `cache` with `tune_threads` autotuner workers.
// Returns the wall-clock seconds; `check` accumulates every layer time so
// two sweeps can be compared bitwise.
double TuningSweep(tilelink::tl::TunedConfigCache* cache, int tune_threads,
                   int64_t* check) {
  using namespace tilelink;
  const auto t0 = std::chrono::steady_clock::now();
  for (const bool two_node : {false, true}) {
    models::E2eEstimator est(/*tp=*/8, /*batch=*/4, /*seq=*/8192, two_node);
    est.EnableTuning(cache, tune_threads);
    for (const models::ModelConfig& m : models::Figure11Models()) {
      *check += est.LayerTime(m, models::Method::kTileLink).total();
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

SectionResult RunSection(bool two_node, tilelink::tl::TunedConfigCache* cache,
                         int tune_threads,
                         tilelink::bench::BenchReport* report) {
  using namespace tilelink;
  using namespace tilelink::bench;
  const int64_t batch = two_node ? 8 : 4;  // paper doubles batch on 2 nodes
  const int64_t local_batch = two_node ? batch / 2 : batch;
  models::E2eEstimator defaults(/*tp=*/8, local_batch, /*seq=*/8192, two_node);
  models::E2eEstimator tuned(/*tp=*/8, local_batch, /*seq=*/8192, two_node);
  tuned.EnableTuning(cache, tune_threads);
  const std::string section = two_node ? "16xH800" : "8xH800";
  std::printf("\n=== Figure 11: end-to-end, %s (batch %lld, seq 8192) ===\n",
              two_node ? "16xH800 (TP8 x DP2)" : "8xH800 (TP8)",
              (long long)batch);
  std::printf("%-16s %13s %13s %13s %9s %9s\n", "model", "Torch layer",
              "TL default", "TL tuned", "speedup", "vs deflt");
  SectionResult out;
  double log_sum = 0.0, dense_log = 0.0, moe_log = 0.0;
  int dense_n = 0, moe_n = 0;
  std::vector<models::E2eResult> rows;
  for (const models::ModelConfig& m : models::Figure11Models()) {
    const models::E2eResult tun = tuned.Run(m);
    // Only the TileLink layer is needed from the defaults estimator (its
    // Torch side would re-simulate the exact layers `tuned` already ran);
    // LayerTime includes the default-config DP sync on two nodes.
    const sim::TimeNs def_layer =
        defaults.LayerTime(m, models::Method::kTileLink).total();
    const double vs_default = static_cast<double>(def_layer) /
                              static_cast<double>(tun.tilelink_layer);
    // Regression gate: the searches are seeded with the hand-picked configs,
    // so a tuned component can never lose to its default in isolation; MoE
    // layers chain two independently-tuned kernels per rank and get 1%.
    const double tolerance = m.is_moe ? 1.01 : 1.0;
    const bool ok = static_cast<double>(tun.tilelink_layer) <=
                    static_cast<double>(def_layer) * tolerance;
    out.ok = out.ok && ok;
    std::printf("%-16s %11.3fms %11.3fms %11.3fms %8.2fx %8.2fx%s\n",
                tun.model.c_str(), ToMsD(tun.torch_layer), ToMsD(def_layer),
                ToMsD(tun.tilelink_layer), tun.speedup, vs_default,
                ok ? "" : "  <- REGRESSION");
    log_sum += std::log(tun.speedup);
    if (m.is_moe) {
      moe_log += std::log(tun.speedup);
      ++moe_n;
    } else {
      dense_log += std::log(tun.speedup);
      ++dense_n;
    }
    const std::string prefix = "fig11." + section + "." + m.name;
    report->Record(prefix + ".torch_ms", ToMsD(tun.torch_layer));
    report->Record(prefix + ".tilelink_default_ms", ToMsD(def_layer));
    report->Record(prefix + ".tilelink_tuned_ms", ToMsD(tun.tilelink_layer));
    report->Record(prefix + ".speedup", tun.speedup);
    // Per-layer component breakdown (attn / ffn / simulated dp-sync).
    report->Record(prefix + ".attn_ms", ToMsD(tun.tilelink_breakdown.attn_block));
    report->Record(prefix + ".ffn_ms", ToMsD(tun.tilelink_breakdown.ffn_block));
    report->Record(prefix + ".torch_attn_ms",
                   ToMsD(tun.torch_breakdown.attn_block));
    report->Record(prefix + ".torch_ffn_ms",
                   ToMsD(tun.torch_breakdown.ffn_block));
    if (two_node) {
      report->Record(prefix + ".dp_sync_ms",
                     ToMsD(tun.tilelink_breakdown.dp_sync));
    }
    rows.push_back(tun);
  }
  out.geomean = std::exp(log_sum / (dense_n + moe_n));
  out.dense_geomean = std::exp(dense_log / dense_n);
  out.moe_geomean = std::exp(moe_log / moe_n);
  std::printf("%-16s %39s %8.2fx\n", "GEOMEAN", "", out.geomean);
  std::printf("  dense geomean %.2fx, MoE geomean %.2fx\n", out.dense_geomean,
              out.moe_geomean);
  report->Record("fig11." + section + ".geomean", out.geomean);
  report->Record("fig11." + section + ".dense_geomean", out.dense_geomean);
  report->Record("fig11." + section + ".moe_geomean", out.moe_geomean);
  if (two_node) {
    // Per-layer component table: where the tuned layer's time goes and what
    // the simulated NIC gradient sync costs each model.
    std::printf("\n-- per-layer breakdown, %s (TileLink tuned) --\n",
                section.c_str());
    std::printf("%-16s %11s %11s %11s %9s\n", "model", "attn", "ffn",
                "dp sync", "dp share");
    for (const models::E2eResult& tun : rows) {
      const models::LayerBreakdown& b = tun.tilelink_breakdown;
      std::printf("%-16s %9.3fms %9.3fms %9.3fms %8.1f%%\n",
                  tun.model.c_str(), ToMsD(b.attn_block), ToMsD(b.ffn_block),
                  ToMsD(b.dp_sync),
                  100.0 * static_cast<double>(b.dp_sync) /
                      static_cast<double>(b.total()));
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tilelink;
  using namespace tilelink::bench;
  BenchReport report(argc, argv);
  int tune_threads = 4;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--tune-threads") {
      tune_threads = std::max(1, std::atoi(argv[i + 1]));
    }
  }
  tl::TunedConfigCache cache;
  if (!report.cache_path().empty() && cache.LoadFile(report.cache_path())) {
    // Both sections tune on H800-constant specs, so one calibration hash
    // covers every key; entries from older calibrations are unreachable.
    const std::size_t stale = cache.PruneStaleCalibration(
        tl::CostCalibrationHash(sim::MachineSpec::H800x8()));
    std::printf("warm-started %zu tuned configs from %s (%zu stale pruned)\n",
                cache.size(), report.cache_path().c_str(), stale);
  }

  // Parallel-determinism gate + tuner wall-clocks: the full cold sweep
  // (every search both sections need) twice on fresh caches — serial, then
  // with --tune-threads workers — which must agree bitwise on every tuned
  // config and every layer time.
  tl::TunedConfigCache serial_cache, parallel_cache;
  int64_t serial_check = 0, parallel_check = 0;
  const double cold_serial_s = TuningSweep(&serial_cache, 1, &serial_check);
  const double cold_parallel_s =
      TuningSweep(&parallel_cache, tune_threads, &parallel_check);
  const bool identical = serial_cache.ToJson() == parallel_cache.ToJson() &&
                         serial_check == parallel_check;
  std::printf(
      "\ntuner cold sweep: %.2fs serial, %.2fs at %d threads (%.2fx); "
      "parallel result %s\n",
      cold_serial_s, cold_parallel_s, tune_threads,
      cold_serial_s / cold_parallel_s,
      identical ? "IDENTICAL to serial" : "DIVERGED from serial");
  // Seed the section cache with the (gated-identical) sweep results and
  // time the now-all-hits warm sweep.
  cache.FromJson(parallel_cache.ToJson());
  int64_t warm_check = 0;
  const double warm_s = TuningSweep(&cache, tune_threads, &warm_check);
  std::printf("tuner warm sweep: %.2fs (all searches cache hits)\n", warm_s);
  report.Record("fig11.tuner.threads", tune_threads);
  report.Record("fig11.tuner.cold_sweep_serial_s", cold_serial_s);
  report.Record("fig11.tuner.cold_sweep_parallel_s", cold_parallel_s);
  report.Record("fig11.tuner.cold_speedup", cold_serial_s / cold_parallel_s);
  report.Record("fig11.tuner.warm_sweep_s", warm_s);
  report.Record("fig11.tuner.deterministic", identical ? 1.0 : 0.0);

  const SectionResult one = RunSection(false, &cache, tune_threads, &report);
  const SectionResult two = RunSection(true, &cache, tune_threads, &report);
  std::printf(
      "\ntuner cache: %zu entries, %d search hits, %d searches run\n",
      cache.size(), cache.hits(), cache.misses());
  if (!report.cache_path().empty() && cache.SaveFile(report.cache_path())) {
    std::printf("saved tuned-config cache to %s\n",
                report.cache_path().c_str());
  }
  // Paper reference (Fig 11): geomeans vs the Torch baseline.
  const double paper_8x = 1.32, paper_8x_dense = 1.20, paper_8x_moe = 1.54;
  const double paper_16x = 1.29;
  std::printf(
      "\nPaper reference (Fig 11): 8xH800 geomean %.2fx (dense %.2fx, MoE "
      "%.2fx); 16xH800 geomean %.2fx.\n",
      paper_8x, paper_8x_dense, paper_8x_moe, paper_16x);
  std::printf(
      "This reproduction (tuned): 8xH800 %.2fx (%.0f%% of paper; dense "
      "%.2fx, MoE %.2fx); 16xH800 %.2fx (%.0f%% of paper).\n",
      one.geomean, 100.0 * one.geomean / paper_8x, one.dense_geomean,
      one.moe_geomean, two.geomean, 100.0 * two.geomean / paper_16x);
  report.Record("fig11.8xH800.geomean_vs_paper", one.geomean / paper_8x);
  report.Record("fig11.16xH800.geomean_vs_paper", two.geomean / paper_16x);
  // Emergent dilution: the two-node geomean relative to the single-node one
  // now comes from simulated NIC flows, so gate it against the paper's
  // ballpark instead of asserting it.
  const double dilution = one.geomean / two.geomean;
  std::printf(
      "Simulated dilution: %.3fx (paper %.3fx; accepted band %.3f..%.3f).\n",
      dilution, paper_8x / paper_16x, kMinDilution, kMaxDilution);
  report.Record("fig11.dilution", dilution);
  if (!report.trace_path().empty()) {
    // The timeline view of the two-node section's emergent cost: the
    // simulated DP gradient AllReduce over the NIC fabric, at the same
    // tile/chunk granularity the dilution gate above measures.
    sim::TraceRecorder rec;
    multinode::ValidateDpAllReduce(sim::MachineSpec::H800x16(),
                                   /*num_tiles=*/24, /*tile_bytes=*/64 << 10,
                                   /*tile_elems=*/128, multinode::HierConfig{},
                                   /*plan=*/nullptr, &rec, /*pid_base=*/0);
    rec.Save(report.trace_path());
    std::printf("trace: wrote %s (%zu events)\n", report.trace_path().c_str(),
                rec.size());
  }
  report.WriteJson();
  bool ok = one.ok && two.ok;
  if (!identical || warm_check != serial_check) {
    std::printf("\nFAIL: parallel tuning (%d threads) diverged from the "
                "serial search — determinism guarantee broken.\n",
                tune_threads);
    ok = false;
  }
  if (dilution < kMinDilution || dilution > kMaxDilution) {
    std::printf("\nFAIL: simulated two-node dilution %.3fx left the paper's "
                "ballpark [%.3f, %.3f].\n",
                dilution, kMinDilution, kMaxDilution);
    ok = false;
  }
  if (!(one.ok && two.ok)) {
    std::printf("\nFAIL: a tuned config regressed past its hand-picked "
                "default.\n");
  }
  return ok ? 0 : 1;
}
