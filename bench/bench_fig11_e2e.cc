// Figure 11: end-to-end LLM comparison (TileLink vs PyTorch) on 8xH800
// (TP=8, batch 4, seq 8192) and 16xH800 (TP=8 x DP=2, batch 8).
#include "bench/bench_common.h"
#include "models/transformer.h"

int main() {
  using namespace tilelink;
  using namespace tilelink::bench;
  for (const bool two_node : {false, true}) {
    const int64_t batch = two_node ? 8 : 4;  // paper doubles batch on 2 nodes
    models::E2eEstimator est(/*tp=*/8, /*batch=*/two_node ? batch / 2 : batch,
                             /*seq=*/8192, two_node);
    std::printf("\n=== Figure 11: end-to-end, %s (batch %lld, seq 8192) ===\n",
                two_node ? "16xH800 (TP8 x DP2)" : "8xH800 (TP8)",
                (long long)batch);
    std::printf("%-16s %14s %14s %10s\n", "model", "Torch layer",
                "TileLink layer", "speedup");
    double log_sum = 0.0;
    double dense_log = 0.0, moe_log = 0.0;
    int dense_n = 0, moe_n = 0;
    for (const models::ModelConfig& m : models::Figure11Models()) {
      const models::E2eResult r = est.Run(m);
      std::printf("%-16s %12.3fms %12.3fms %9.2fx\n", r.model.c_str(),
                  ToMsD(r.torch_layer), ToMsD(r.tilelink_layer), r.speedup);
      log_sum += std::log(r.speedup);
      if (m.is_moe) {
        moe_log += std::log(r.speedup);
        ++moe_n;
      } else {
        dense_log += std::log(r.speedup);
        ++dense_n;
      }
    }
    std::printf("%-16s %28s %9.2fx\n", "GEOMEAN", "",
                std::exp(log_sum / 8.0));
    std::printf("  dense geomean %.2fx, MoE geomean %.2fx\n",
                std::exp(dense_log / dense_n), std::exp(moe_log / moe_n));
  }
  std::printf(
      "\nPaper reference (Fig 11): 8xH800 geomean 1.32x (dense 1.20x, MoE "
      "1.54x); 16xH800 geomean 1.29x.\n");
  return 0;
}
