// Shared harness for the figure/table benchmarks: paper-scale runs on the
// H800x8 machine in timing-only mode with coarse reduction tiling (simulated
// time is invariant in bk; see DESIGN.md §6), plus table printing and
// geomean helpers that emit the same rows/series the paper reports.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "compute/gemm.h"
#include "runtime/world.h"
#include "sim/machine_spec.h"

namespace tilelink::bench {

inline rt::World MakeH800x8() {
  return rt::World(sim::MachineSpec::H800x8(), rt::ExecMode::kTimingOnly);
}

// Coarse k-tiling for paper-scale shapes (event-count reduction only).
inline compute::GemmTiling CoarseTiling(int64_t k, int bm = 128,
                                        int bn = 256) {
  compute::GemmTiling t{bm, bn, 64};
  int64_t bk = k / 8;
  bk = bk - bk % 64;
  if (bk < 64) bk = 64;
  t.bk = static_cast<int>(bk);
  return t;
}

inline double ToMsD(sim::TimeNs t) { return static_cast<double>(t) / 1e6; }

// A results table: rows are shapes, columns are methods (milliseconds).
class ResultTable {
 public:
  ResultTable(std::string title, std::vector<std::string> columns)
      : title_(std::move(title)), columns_(std::move(columns)) {}

  void Add(const std::string& row, const std::string& column, double ms) {
    rows_[row][column] = ms;
    if (std::find(row_order_.begin(), row_order_.end(), row) ==
        row_order_.end()) {
      row_order_.push_back(row);
    }
  }

  // Prints absolute ms plus, when `relative_to` names a column, the
  // relative-performance view used by the paper's figures
  // (baseline_time / method_time, higher is better).
  void Print(const std::string& relative_to = "") const {
    std::printf("\n=== %s ===\n", title_.c_str());
    std::printf("%-12s", "shape");
    for (const auto& c : columns_) std::printf("%16s", c.c_str());
    std::printf("\n");
    for (const auto& row : row_order_) {
      std::printf("%-12s", row.c_str());
      for (const auto& c : columns_) {
        auto it = rows_.at(row).find(c);
        if (it == rows_.at(row).end()) {
          std::printf("%16s", "-");
        } else {
          std::printf("%13.3fms", it->second);
        }
      }
      std::printf("\n");
    }
    if (!relative_to.empty()) {
      std::printf("-- relative performance (vs %s, higher is better) --\n",
                  relative_to.c_str());
      std::map<std::string, std::pair<double, int>> geo;  // log-sum, count
      for (const auto& row : row_order_) {
        std::printf("%-12s", row.c_str());
        const double base = rows_.at(row).at(relative_to);
        for (const auto& c : columns_) {
          auto it = rows_.at(row).find(c);
          if (it == rows_.at(row).end()) {
            std::printf("%16s", "-");
            continue;
          }
          const double rel = base / it->second;
          geo[c].first += std::log(rel);
          geo[c].second += 1;
          std::printf("%15.2fx", rel);
        }
        std::printf("\n");
      }
      std::printf("%-12s", "GEOMEAN");
      for (const auto& c : columns_) {
        auto it = geo.find(c);
        if (it == geo.end() || it->second.second == 0) {
          std::printf("%16s", "-");
        } else {
          std::printf("%15.2fx",
                      std::exp(it->second.first / it->second.second));
        }
      }
      std::printf("\n");
    }
  }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::string> row_order_;
  std::map<std::string, std::map<std::string, double>> rows_;
};

}  // namespace tilelink::bench
