// Shared harness for the figure/table benchmarks: paper-scale runs on the
// H800x8 machine in timing-only mode with coarse reduction tiling (simulated
// time is invariant in bk; see DESIGN.md §6), plus table printing and
// geomean helpers that emit the same rows/series the paper reports.
//
// Machine-readable output: construct a BenchReport from main's argv, Record
// every latency/speedup worth tracking, and call WriteJson() before exit.
// `--json <path>` then writes a flat {"key": value} document (e.g.
// BENCH_fig8.json) so the perf trajectory is tracked across PRs;
// `--cache <path>` names a TunedConfigCache file for benches that
// warm-start autotuner searches from a previous run.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "compute/gemm.h"
#include "runtime/world.h"
#include "sim/machine_spec.h"

namespace tilelink::bench {

class BenchReport {
 public:
  BenchReport(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (i + 1 < argc) {
        if (arg == "--json") json_path_ = argv[i + 1];
        if (arg == "--cache") cache_path_ = argv[i + 1];
        if (arg == "--trace") trace_path_ = argv[i + 1];
      }
      // `--flag=path` forms of the same three.
      if (arg.rfind("--json=", 0) == 0) json_path_ = arg.substr(7);
      if (arg.rfind("--cache=", 0) == 0) cache_path_ = arg.substr(8);
      if (arg.rfind("--trace=", 0) == 0) trace_path_ = arg.substr(8);
    }
  }

  const std::string& json_path() const { return json_path_; }
  const std::string& cache_path() const { return cache_path_; }
  // Chrome-trace output path (`--trace <path>` / `--trace=path`); benches
  // that support timeline recording re-run a representative workload with a
  // TraceRecorder attached and Save() it here. Empty when not requested.
  const std::string& trace_path() const { return trace_path_; }

  void Record(const std::string& key, double value) { values_[key] = value; }

  // Writes the recorded values as sorted-key JSON; no-op without --json.
  bool WriteJson() const {
    if (json_path_.empty()) return true;
    std::FILE* f = std::fopen(json_path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", json_path_.c_str());
      return false;
    }
    std::fprintf(f, "{\n");
    bool first = true;
    for (const auto& [key, value] : values_) {
      std::fprintf(f, "%s  \"%s\": %.17g", first ? "" : ",\n", key.c_str(),
                   value);
      first = false;
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("bench: wrote %s\n", json_path_.c_str());
    return true;
  }

 private:
  std::string json_path_;
  std::string cache_path_;
  std::string trace_path_;
  std::map<std::string, double> values_;
};

inline rt::World MakeH800x8() {
  return rt::World(sim::MachineSpec::H800x8(), rt::ExecMode::kTimingOnly);
}

// Coarse k-tiling for paper-scale shapes (event-count reduction only).
inline compute::GemmTiling CoarseTiling(int64_t k, int bm = 128,
                                        int bn = 256) {
  compute::GemmTiling t{bm, bn, 64};
  int64_t bk = k / 8;
  bk = bk - bk % 64;
  if (bk < 64) bk = 64;
  t.bk = static_cast<int>(bk);
  return t;
}

inline double ToMsD(sim::TimeNs t) { return static_cast<double>(t) / 1e6; }

// A results table: rows are shapes, columns are methods (milliseconds).
class ResultTable {
 public:
  ResultTable(std::string title, std::vector<std::string> columns)
      : title_(std::move(title)), columns_(std::move(columns)) {}

  void Add(const std::string& row, const std::string& column, double ms) {
    rows_[row][column] = ms;
    if (std::find(row_order_.begin(), row_order_.end(), row) ==
        row_order_.end()) {
      row_order_.push_back(row);
    }
  }

  // Prints absolute ms plus, when `relative_to` names a column, the
  // relative-performance view used by the paper's figures
  // (baseline_time / method_time, higher is better).
  void Print(const std::string& relative_to = "") const {
    std::printf("\n=== %s ===\n", title_.c_str());
    std::printf("%-12s", "shape");
    for (const auto& c : columns_) std::printf("%16s", c.c_str());
    std::printf("\n");
    for (const auto& row : row_order_) {
      std::printf("%-12s", row.c_str());
      for (const auto& c : columns_) {
        auto it = rows_.at(row).find(c);
        if (it == rows_.at(row).end()) {
          std::printf("%16s", "-");
        } else {
          std::printf("%13.3fms", it->second);
        }
      }
      std::printf("\n");
    }
    if (!relative_to.empty()) {
      std::printf("-- relative performance (vs %s, higher is better) --\n",
                  relative_to.c_str());
      std::map<std::string, std::pair<double, int>> geo;  // log-sum, count
      for (const auto& row : row_order_) {
        std::printf("%-12s", row.c_str());
        const double base = rows_.at(row).at(relative_to);
        for (const auto& c : columns_) {
          auto it = rows_.at(row).find(c);
          if (it == rows_.at(row).end()) {
            std::printf("%16s", "-");
            continue;
          }
          const double rel = base / it->second;
          geo[c].first += std::log(rel);
          geo[c].second += 1;
          std::printf("%15.2fx", rel);
        }
        std::printf("\n");
      }
      std::printf("%-12s", "GEOMEAN");
      for (const auto& c : columns_) {
        auto it = geo.find(c);
        if (it == geo.end() || it->second.second == 0) {
          std::printf("%16s", "-");
        } else {
          std::printf("%15.2fx",
                      std::exp(it->second.first / it->second.second));
        }
      }
      std::printf("\n");
    }
  }

  // Records every cell as "<prefix>.<row>.<column>_ms" (and, when
  // `relative_to` names a column, each method's geomean speedup as
  // "<prefix>.geomean.<column>") into `report`.
  void Export(BenchReport* report, const std::string& prefix,
              const std::string& relative_to = "") const {
    std::map<std::string, std::pair<double, int>> geo;
    for (const auto& row : row_order_) {
      for (const auto& c : columns_) {
        auto it = rows_.at(row).find(c);
        if (it == rows_.at(row).end()) continue;
        report->Record(prefix + "." + row + "." + c + "_ms", it->second);
        if (!relative_to.empty()) {
          const double rel = rows_.at(row).at(relative_to) / it->second;
          geo[c].first += std::log(rel);
          geo[c].second += 1;
        }
      }
    }
    for (const auto& [c, acc] : geo) {
      if (acc.second > 0) {
        report->Record(prefix + ".geomean." + c,
                       std::exp(acc.first / acc.second));
      }
    }
  }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::string> row_order_;
  std::map<std::string, std::map<std::string, double>> rows_;
};

}  // namespace tilelink::bench
