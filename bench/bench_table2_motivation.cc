// Table 2 (motivational example): LLaMA-7B MLP (8192 x 4096 x 11008, TP=8),
// AG+GEMM and GEMM+RS under non-overlap / decomposition / fusion (FLUX) /
// TileLink.
#include "baselines/flux_baselines.h"
#include "baselines/mlp_baselines.h"
#include "bench/bench_common.h"
#include "tilelink/kernels/ag_gemm.h"
#include "tilelink/kernels/gemm_rs.h"

namespace tilelink::bench {
namespace {

template <typename Bench>
double RunPart(Bench& bench, rt::World& world) {
  return ToMsD(world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); }));
}

}  // namespace
}  // namespace tilelink::bench

int main() {
  using namespace tilelink::bench;
  using namespace tilelink;
  const int64_t s = 8192, h = 4096, i = 11008;
  const int R = 8;
  const int64_t n1 = i / R;   // AG+GEMM output cols
  const int64_t k2 = i / R;   // GEMM+RS reduction dim

  ResultTable table("Table 2: motivational example (LLaMA-7B MLP, TP=8)",
                    {"AG+GEMM", "GEMM+RS"});
  {
    rt::World w = MakeH800x8();
    baselines::MlpPartConfig cfg{s, h, n1, CoarseTiling(h)};
    baselines::NonOverlapAgGemm b(w, cfg);
    table.Add("Non-Overlap", "AG+GEMM", RunPart(b, w));
  }
  {
    rt::World w = MakeH800x8();
    baselines::MlpPartConfig cfg{s, k2, h, CoarseTiling(k2)};
    baselines::NonOverlapGemmRs b(w, cfg);
    table.Add("Non-Overlap", "GEMM+RS", RunPart(b, w));
  }
  {
    rt::World w = MakeH800x8();
    baselines::MlpPartConfig cfg{s, h, n1, CoarseTiling(h)};
    baselines::DecomposeAgGemm b(w, cfg);
    table.Add("Decomposition", "AG+GEMM", RunPart(b, w));
  }
  {
    rt::World w = MakeH800x8();
    baselines::MlpPartConfig cfg{s, k2, h, CoarseTiling(k2)};
    baselines::DecomposeGemmRs b(w, cfg);
    table.Add("Decomposition", "GEMM+RS", RunPart(b, w));
  }
  {
    rt::World w = MakeH800x8();
    baselines::FluxConfig cfg{s, h, n1, CoarseTiling(h)};
    baselines::FluxAgGemm b(w, cfg);
    table.Add("Fusion (FLUX)", "AG+GEMM", RunPart(b, w));
  }
  {
    rt::World w = MakeH800x8();
    baselines::FluxConfig cfg{s, k2, h, CoarseTiling(k2)};
    baselines::FluxGemmRs b(w, cfg);
    table.Add("Fusion (FLUX)", "GEMM+RS", RunPart(b, w));
  }
  {
    rt::World w = MakeH800x8();
    tl::AgGemmConfig cfg;
    cfg.m = s;
    cfg.k = h;
    cfg.n = n1;
    cfg.gemm = CoarseTiling(h);
    cfg.channels_per_rank = 4;
    cfg.comm = tl::CommResource::kDma;
    tl::AgGemm b(w, cfg);
    table.Add("TileLink", "AG+GEMM", RunPart(b, w));
  }
  {
    rt::World w = MakeH800x8();
    tl::GemmRsConfig cfg;
    cfg.m = s;
    cfg.k = k2;
    cfg.n = h;
    cfg.gemm = CoarseTiling(k2);
    cfg.rs_block_m = 128;
    cfg.dma_push = true;
    tl::GemmRs b(w, cfg);
    table.Add("TileLink", "GEMM+RS", RunPart(b, w));
  }
  table.Print();
  std::printf(
      "\nPaper reference (Table 2, ms): Non-Overlap 0.676/0.541, "
      "Decomposition 1.301/1.443, FLUX 0.504/0.610, TileLink 0.505/0.504.\n"
      "Lines of code: FLUX ~2000 .cu vs TileLink ~200 .py (here: the "
      "overlapped kernels in src/tilelink/kernels are built from Table 3 "
      "primitives).\n");
  return 0;
}
