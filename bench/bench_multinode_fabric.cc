// Multi-node fabric smoke: hierarchical vs flat collectives at 2x8, and
// the DP gradient-sync NIC-knob search, on the paper's H800x16 machine.
//
// Exit is nonzero if (a) a hierarchical collective loses to its flat
// single-stage baseline at any tested shard size, or (b) the tuner's
// NIC-knob search returns a DP-sync config worse than the hand-picked
// two-node defaults. scripts/ci.sh runs this as the 16-GPU smoke stage.
//
// Flags: --json <path> records every latency and ratio.
#include <cstdint>

#include "bench/bench_common.h"
#include "tilelink/multinode/hier_collectives.h"
#include "tilelink/multinode/multinode_tuning.h"

int main(int argc, char** argv) {
  using namespace tilelink;
  using namespace tilelink::bench;
  BenchReport report(argc, argv);
  const sim::MachineSpec spec = sim::MachineSpec::H800x16();
  const multinode::HierConfig cfg;
  bool ok = true;

  std::printf("=== Multi-node fabric: 2x8 H800, hierarchical vs flat ===\n");
  ResultTable table("tile-granular collectives (2x8, per-rank shard)",
                    {"hier", "flat"});
  struct Shape {
    const char* name;
    int64_t tiles;
    uint64_t tile_bytes;
  };
  // 4 MiB to 64 MiB per-rank shards: the AG/RS volumes of the paper's
  // figure-8/11 layer shapes at TP=8.
  const Shape shapes[] = {{"ag_4MiB", 16, 256 << 10},
                          {"ag_16MiB", 32, 512 << 10},
                          {"ag_64MiB", 64, 1 << 20}};
  for (const Shape& s : shapes) {
    const sim::TimeNs hier =
        multinode::SimulateHierAllGather(spec, s.tiles, s.tile_bytes, cfg);
    const sim::TimeNs flat =
        multinode::SimulateFlatAllGather(spec, s.tiles, s.tile_bytes, cfg);
    table.Add(s.name, "hier", ToMsD(hier));
    table.Add(s.name, "flat", ToMsD(flat));
    ok = ok && hier < flat;
    const std::string rs_name =
        std::string("rs") + (s.name + 2);  // same volumes, RS direction
    const sim::TimeNs hier_rs = multinode::SimulateHierReduceScatter(
        spec, s.tiles, s.tile_bytes, cfg);
    const sim::TimeNs flat_rs = multinode::SimulateFlatReduceScatter(
        spec, s.tiles, s.tile_bytes, cfg);
    table.Add(rs_name, "hier", ToMsD(hier_rs));
    table.Add(rs_name, "flat", ToMsD(flat_rs));
    ok = ok && hier_rs < flat_rs;
  }
  // Relative view: flat_time / hier_time, higher means hierarchy wins more.
  table.Print("flat");
  table.Export(&report, "multinode.collectives", "flat");

  std::printf("\n=== DP gradient sync: NIC-knob search vs defaults ===\n");
  std::printf("%-12s %13s %13s %9s  %s\n", "grad bytes", "default", "tuned",
              "ratio", "tuned knobs");
  const tl::TuneCandidate defaults = multinode::DefaultDpSyncCandidate();
  for (uint64_t bytes : {48ull << 20, 128ull << 20, 448ull << 20}) {
    const sim::TimeNs def = multinode::SimulateDpSync(spec, bytes, defaults);
    const tl::TuneResult r = multinode::TuneDpSync(
        spec, bytes, tl::TuningSpace::MultiNode(), defaults);
    const double ratio = static_cast<double>(def) /
                         static_cast<double>(r.best_cost);
    std::printf("%9lluMiB %11.3fms %11.3fms %8.2fx  nic_chunk=%d staging=%d\n",
                (unsigned long long)(bytes >> 20), ToMsD(def),
                ToMsD(r.best_cost), ratio, r.best.nic_chunk_tiles,
                r.best.staging_depth);
    const std::string prefix =
        "multinode.dp_sync." + std::to_string(bytes >> 20) + "MiB";
    report.Record(prefix + ".default_ms", ToMsD(def));
    report.Record(prefix + ".tuned_ms", ToMsD(r.best_cost));
    report.Record(prefix + ".speedup", ratio);
    ok = ok && r.best_cost <= def;
  }

  report.WriteJson();
  if (!ok) {
    std::printf("\nFAIL: hierarchical lost to flat, or a tuned DP-sync "
                "config lost to the hand-picked defaults.\n");
    return 1;
  }
  std::printf("\nOK: hierarchical beats flat at 2x8; tuned DP-sync configs "
              "are never worse than the defaults.\n");
  return 0;
}
