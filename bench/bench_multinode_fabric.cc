// Multi-node fabric smoke: hierarchical vs flat collectives at 2x8, and
// the DP gradient-sync NIC-knob search, on the paper's H800x16 machine.
//
// Exit is nonzero if (a) a hierarchical collective loses to its flat
// single-stage baseline at any tested shard size, or (b) the tuner's
// NIC-knob search returns a DP-sync config worse than the hand-picked
// two-node defaults. scripts/ci.sh runs this as the 16-GPU smoke stage.
//
// Flags: --json <path> records every latency and ratio. --payload
// additionally runs the functional 2x8 validation first: every collective
// moves real per-tile data, must match the single-rank references
// bit-exactly with zero consistency violations, and an injected
// prefix-publication fault on the NIC rail stage must be *caught* by the
// checker. --fused gates the fused GEMM + hierarchical ReduceScatter
// kernel: at 2x8 it must beat the layer-level GEMM-then-HierRS compose on
// simulated makespan at every tested shape, the joint-space tuner must
// never lose to the hand-picked seed, and the functional run must be
// bit-exact with zero checker violations. --ag-fused gates the generated
// fused hierarchical AllGather + GEMM kernel the same way (beats the
// HierAG-then-GEMM compose at every shape including small-m, tuner never
// loses to the seed, functional and fault-plan runs checker-clean and
// bit-exact) and exports fabric.ag_fused_speedup plus the generated
// kernel's exposed-communication fraction. --faults runs the deterministic
// fault sweep on a 4-NIC-rail 2x8: targeted drops, latency spikes, seeded
// random transient mixes and rail death must all leave every collective and
// the fused kernel bit-exact with zero checker violations, and killing one
// of four rails at t=0 must cost at most 4/3 (+10%) of the fault-free
// makespan on bandwidth-bound shapes. The timing gates below are identical
// with or without any flag. Every invocation also runs the fabric
// timeline/profiler gate (valid chrome-trace JSON, a >= 3-arrow
// producer->ring->rail->reduce flow chain, internally consistent overlap
// numbers, tracing-on/off bitwise makespan identity); --trace <path> saves
// the recorded timeline for chrome://tracing / Perfetto.
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "sim/fault.h"
#include "sim/profile.h"
#include "sim/trace.h"
#include "tilelink/multinode/hier_collectives.h"
#include "tilelink/multinode/multinode_tuning.h"
#include "tilelink/multinode/payload_validation.h"

namespace {

bool RunPayloadValidation(const tilelink::sim::MachineSpec& spec,
                          tilelink::bench::BenchReport* report) {
  using namespace tilelink::multinode;
  const HierConfig cfg;
  const int64_t tiles = 24;
  const uint64_t tile_bytes = 64 << 10;
  const int64_t tile_elems = 128;
  bool ok = true;

  std::printf("=== Functional payload validation (2x8, bit-exact + checker) "
              "===\n");
  struct Case {
    const char* name;
    PayloadReport r;
  };
  const Case cases[] = {
      {"hier_ag", ValidateHierAllGather(spec, tiles, tile_bytes, tile_elems,
                                        cfg)},
      {"hier_rs", ValidateHierReduceScatter(spec, tiles, tile_bytes,
                                            tile_elems, cfg)},
      {"flat_ag", ValidateFlatAllGather(spec, tiles, tile_bytes, tile_elems,
                                        cfg)},
      {"flat_rs", ValidateFlatReduceScatter(spec, tiles, tile_bytes,
                                            tile_elems, cfg)},
      {"dp_ar", ValidateDpAllReduce(spec, tiles, tile_bytes, tile_elems,
                                    cfg)},
  };
  for (const Case& c : cases) {
    std::printf("  %-8s bit_exact=%d violations=%zu\n", c.name,
                c.r.bit_exact ? 1 : 0, c.r.violations);
    report->Record(std::string("multinode.payload.") + c.name + ".ok",
                   c.r.ok() ? 1.0 : 0.0);
    ok = ok && c.r.ok();
  }

  // Fault canary: drop one rail chunk's in-order publication (the §4.2
  // acquire/release inversion on the NIC stage) — the checker must report
  // it, not let a silently wrong answer through.
  HierConfig fault = cfg;
  fault.unsafe_rail_src = 0;
  fault.unsafe_rail_chunk = 0;
  const PayloadReport f =
      ValidateHierAllGather(spec, tiles, tile_bytes, tile_elems, fault);
  std::printf("  fault    violations=%zu (must be >= 1)\n", f.violations);
  report->Record("multinode.payload.fault_detected",
                 f.violations >= 1 ? 1.0 : 0.0);
  ok = ok && f.violations >= 1;
  std::printf("%s\n\n", ok ? "payload validation OK"
                           : "payload validation FAILED");
  return ok;
}

bool RunFusedGate(const tilelink::sim::MachineSpec& spec,
                  tilelink::bench::BenchReport* report) {
  using namespace tilelink;
  using namespace tilelink::multinode;
  bool ok = true;
  std::printf("=== Fused GEMM + hier RS vs layer-level compose (2x8) ===\n");
  std::printf("%-22s %11s %11s %8s %11s\n", "shape", "compose", "fused",
              "ratio", "tuned");
  struct Shape {
    const char* name;
    tl::MlpPartShape s;
  };
  // Row-parallel projection shapes of TP16 transformer layers at e2e batch
  // scale (m = batch x seq tokens): out-proj (k = h/16) and MLP part 2
  // (k = inner/16). Small m leaves the ring role too few chunks to overlap
  // profitably — that regime stays with the layer-level compose.
  const Shape shapes[] = {
      {"out_proj_4k", {16384, 256, 4096}},
      {"mlp2_4k", {16384, 688, 4096}},
      {"out_proj_8k", {8192, 512, 8192}},
  };
  for (const Shape& sh : shapes) {
    const tl::TuneCandidate seed =
        DefaultGemmHierRsCandidate(sh.s, spec.num_devices);
    const sim::TimeNs fused = SimulateGemmHierRs(spec, sh.s, seed);
    const sim::TimeNs compose = SimulateGemmThenHierRs(spec, sh.s, seed);
    const tl::TuneResult tuned = TuneGemmHierRs(
        spec, sh.s, tl::TuningSpace::GemmHierRs(), seed);
    const double ratio =
        static_cast<double>(compose) / static_cast<double>(fused);
    std::printf("%-22s %9.3fms %9.3fms %7.2fx %9.3fms  %s\n", sh.name,
                bench::ToMsD(compose), bench::ToMsD(fused), ratio,
                bench::ToMsD(tuned.best_cost), tuned.best.Describe().c_str());
    const std::string prefix = std::string("multinode.fused.") + sh.name;
    report->Record(prefix + ".compose_ms", bench::ToMsD(compose));
    report->Record(prefix + ".fused_ms", bench::ToMsD(fused));
    report->Record(prefix + ".tuned_ms", bench::ToMsD(tuned.best_cost));
    report->Record(prefix + ".overlap_speedup", ratio);
    ok = ok && fused < compose && tuned.best_cost <= fused;
  }
  // Functional gate: real data through all four roles, bit-exact with zero
  // consistency violations (including the write-write audit).
  tl::GemmHierRsConfig small;
  small.m = static_cast<int64_t>(spec.num_devices) * 16;
  small.k = 16;
  small.n = 16;
  small.gemm = {8, 16, 8};
  small.rs_block_m = 8;
  const PayloadReport r = ValidateGemmHierRs(spec, small);
  std::printf("  functional: bit_exact=%d violations=%zu\n",
              r.bit_exact ? 1 : 0, r.violations);
  report->Record("multinode.fused.payload_ok", r.ok() ? 1.0 : 0.0);
  ok = ok && r.ok();
  std::printf("%s\n\n", ok ? "fused gate OK" : "fused gate FAILED");
  return ok;
}

// --ag-fused: the generated fused hierarchical AllGather + GEMM kernel
// (the OverlapPlanner's first new kernel, kernels/ag_gemm_hier) against the
// HierAllGather-then-GEMM layer compose, including a small-m shape where
// the planner column-splits the ring role over the K width. A traced
// functional run feeds the critical-path profiler so the generated
// kernel's exposed-communication fraction lands in --json, and a
// fault-plan run must stay bit-exact with zero checker violations.
bool RunAgFusedGate(const tilelink::sim::MachineSpec& spec,
                    tilelink::bench::BenchReport* report) {
  using namespace tilelink;
  using namespace tilelink::multinode;
  bool ok = true;
  std::printf(
      "=== Generated fused hier AG + GEMM vs layer-level compose (2x8) ===\n");
  std::printf("%-22s %11s %11s %8s %11s\n", "shape", "compose", "fused",
              "ratio", "tuned");
  struct Shape {
    const char* name;
    tl::MlpPartShape s;
  };
  // Column-parallel projection shapes of TP16 transformer layers at e2e
  // batch scale (m = batch x seq tokens, k = hidden gathered over the NIC):
  // QKV (n = 3h/16) and MLP part 1 (n = inner/16). qkv_small is the
  // small-m regime: m_per_rank = 128 leaves a single ring chunk per block,
  // so the planner column-splits the K width (S > 1) instead of losing to
  // the layer-level compose.
  const Shape shapes[] = {
      {"qkv_4k", {16384, 4096, 768}},
      {"mlp1_4k", {16384, 4096, 1024}},
      {"qkv_small", {2048, 4096, 1024}},
  };
  double min_speedup = 0.0;
  for (const Shape& sh : shapes) {
    const tl::TuneCandidate seed =
        DefaultAgGemmHierCandidate(sh.s, spec.num_devices);
    const sim::TimeNs fused = SimulateAgGemmHier(spec, sh.s, seed);
    const sim::TimeNs compose = SimulateHierAgThenGemm(spec, sh.s, seed);
    const tl::TuneResult tuned =
        TuneAgGemmHier(spec, sh.s, tl::TuningSpace::AgGemmHier(), seed);
    const double ratio =
        static_cast<double>(compose) / static_cast<double>(fused);
    std::printf("%-22s %9.3fms %9.3fms %7.2fx %9.3fms  %s\n", sh.name,
                bench::ToMsD(compose), bench::ToMsD(fused), ratio,
                bench::ToMsD(tuned.best_cost), tuned.best.Describe().c_str());
    const std::string prefix = std::string("multinode.ag_fused.") + sh.name;
    report->Record(prefix + ".compose_ms", bench::ToMsD(compose));
    report->Record(prefix + ".fused_ms", bench::ToMsD(fused));
    report->Record(prefix + ".tuned_ms", bench::ToMsD(tuned.best_cost));
    report->Record(prefix + ".overlap_speedup", ratio);
    min_speedup = min_speedup == 0.0 ? ratio : std::min(min_speedup, ratio);
    ok = ok && fused < compose && tuned.best_cost <= fused;
  }
  // The CI-gated headline number: the worst compose/fused ratio across the
  // gate shapes (> 1 means the generated kernel wins everywhere).
  report->Record("fabric.ag_fused_speedup", min_speedup);

  // Small-m planner decision: the qkv_small shape must actually trigger
  // the column split (the ring role would otherwise run one chunk per
  // block and serialize against the rail).
  {
    rt::World world(spec, rt::ExecMode::kTimingOnly);
    tl::AgGemmHier kernel(
        world, AgGemmHierFromCandidate(
                   shapes[2].s,
                   DefaultAgGemmHierCandidate(shapes[2].s, spec.num_devices)));
    std::printf("  small-m planner col_splits=%d (need > 1)\n",
                kernel.col_splits());
    report->Record("multinode.ag_fused.small_m_col_splits",
                   static_cast<double>(kernel.col_splits()));
    ok = ok && kernel.col_splits() > 1;
  }

  // Functional gate with the timeline attached: real data through the
  // publish/ring/rail/consumer roles, bit-exact with zero violations, and
  // the profiler's exposed-communication fraction for the generated
  // kernel exported next to the speedup.
  tl::AgGemmHierConfig small;
  small.m = static_cast<int64_t>(spec.num_devices) * 16;
  small.k = 16;
  small.n = 16;
  small.gemm = {8, 16, 8};
  small.comm_tile_m = 8;
  sim::TraceRecorder rec;
  const PayloadReport r =
      ValidateAgGemmHier(spec, small, nullptr, &rec, /*trace_pid_base=*/0);
  const sim::Profile prof = sim::BuildProfile(rec);
  std::printf("  functional: bit_exact=%d violations=%zu "
              "exposed_comm_frac=%.3f\n",
              r.bit_exact ? 1 : 0, r.violations, prof.exposed_comm_frac);
  report->Record("multinode.ag_fused.payload_ok", r.ok() ? 1.0 : 0.0);
  report->Record("fabric.ag_fused_exposed_comm_frac", prof.exposed_comm_frac);
  ok = ok && r.ok();

  // Fault-plan gate: transient NIC/NVLink drops and spikes must leave the
  // generated kernel bit-exact with zero violations (and must actually
  // have injected something).
  sim::FaultPlan plan;
  plan.RandomTransients("nic", /*seed=*/1ull, /*drop_prob=*/0.08,
                        /*spike_prob=*/0.10, /*spike_mult=*/3.0);
  plan.RandomTransients("nvlink", /*seed=*/0x9e3779b97f4a7c15ull,
                        /*drop_prob=*/0.02, /*spike_prob=*/0.05,
                        /*spike_mult=*/2.0);
  const PayloadReport fr = ValidateAgGemmHier(spec, small, &plan);
  const uint64_t injected = fr.faults.drops + fr.faults.spikes;
  std::printf("  faulted: bit_exact=%d violations=%zu drops=%llu "
              "spikes=%llu retries=%llu\n",
              fr.bit_exact ? 1 : 0, fr.violations,
              (unsigned long long)fr.faults.drops,
              (unsigned long long)fr.faults.spikes,
              (unsigned long long)fr.faults.retries);
  report->Record("multinode.ag_fused.fault_ok",
                 fr.ok() && injected > 0 ? 1.0 : 0.0);
  ok = ok && fr.ok() && injected > 0;

  std::printf("%s\n\n", ok ? "ag-fused gate OK" : "ag-fused gate FAILED");
  return ok;
}

// Deterministic fault sweep (--faults): every schedule must leave every
// collective (and the fused kernel) bit-exact with zero checker violations;
// rail death must additionally stay within the surviving-bandwidth bound.
bool RunFaultSweep(const tilelink::sim::MachineSpec& base,
                   tilelink::bench::BenchReport* report) {
  using namespace tilelink;
  using namespace tilelink::multinode;
  bool ok = true;
  std::printf("=== Fault sweep: retry/backoff + rail failover "
              "(2x8, 4 NIC rails) ===\n");

  sim::MachineSpec spec = base;
  spec.nic_rails = 4;
  HierConfig cfg;
  cfg.nic_chunk_tiles = 4;  // 48 tiles -> 12 NIC chunks per stream:
  cfg.staging_depth = 12;   // divisible by 4 rails and by 3 survivors
  const int64_t tiles = 48;
  const uint64_t tile_bytes = 512 << 10;  // bandwidth-bound NIC stage
  const int64_t tile_elems = 128;
  const int per_node = spec.devices_per_node;

  // NIC edges the 2x8 collectives use: rail-peer pairs (r, r+8) for the
  // hierarchical collectives / DP groups / fused kernel, ring node-boundary
  // hops for the flat baselines.
  struct Edge {
    int src, dst;
  };
  const Edge nic_edges[] = {{0, per_node},
                            {per_node, 0},
                            {per_node - 1, per_node},
                            {per_node, per_node - 1},
                            {2 * per_node - 1, 0},
                            {0, 2 * per_node - 1}};

  std::vector<std::pair<std::string, sim::FaultPlan>> schedules;
  {
    sim::FaultPlan drops;
    for (const Edge& e : nic_edges) {
      drops.DropTransfer("nic", e.src, e.dst, 0);
      drops.DropTransfer("nic", e.src, e.dst, 3);
    }
    schedules.emplace_back("targeted_drop", std::move(drops));

    sim::FaultPlan spikes;
    for (const Edge& e : nic_edges) {
      spikes.SpikeTransfer("nic", e.src, e.dst, 0, 4.0);
      spikes.SpikeTransfer("nic", e.src, e.dst, 2, 3.0);
    }
    schedules.emplace_back("targeted_spike", std::move(spikes));

    for (uint64_t seed : {1ull, 2ull, 3ull}) {
      sim::FaultPlan mix;
      mix.RandomTransients("nic", seed, /*drop_prob=*/0.08,
                           /*spike_prob=*/0.10, /*spike_mult=*/3.0);
      mix.RandomTransients("nvlink", seed * 0x9e3779b97f4a7c15ull,
                           /*drop_prob=*/0.02, /*spike_prob=*/0.05,
                           /*spike_mult=*/2.0);
      schedules.emplace_back("random_mix_s" + std::to_string(seed),
                             std::move(mix));
    }
  }

  struct Target {
    const char* name;
    std::function<PayloadReport(const sim::FaultPlan*)> run;
  };
  tl::GemmHierRsConfig fused;
  fused.m = static_cast<int64_t>(spec.num_devices) * 16;
  fused.k = 16;
  fused.n = 16;
  fused.gemm = {8, 16, 8};
  fused.rs_block_m = 8;
  const Target targets[] = {
      {"hier_ag",
       [&](const sim::FaultPlan* p) {
         return ValidateHierAllGather(spec, tiles, tile_bytes, tile_elems,
                                      cfg, p);
       }},
      {"hier_rs",
       [&](const sim::FaultPlan* p) {
         return ValidateHierReduceScatter(spec, tiles, tile_bytes,
                                          tile_elems, cfg, p);
       }},
      {"flat_ag",
       [&](const sim::FaultPlan* p) {
         return ValidateFlatAllGather(spec, tiles, tile_bytes, tile_elems,
                                      cfg, p);
       }},
      {"flat_rs",
       [&](const sim::FaultPlan* p) {
         return ValidateFlatReduceScatter(spec, tiles, tile_bytes,
                                          tile_elems, cfg, p);
       }},
      {"dp_ar",
       [&](const sim::FaultPlan* p) {
         return ValidateDpAllReduce(spec, tiles, tile_bytes, tile_elems, cfg,
                                    p);
       }},
      {"gemm_hier_rs",
       [&](const sim::FaultPlan* p) {
         return ValidateGemmHierRs(spec, fused, p);
       }},
  };

  // Transient schedules: payload bit-exact, zero violations, and the
  // schedule must actually have injected something (so a silently inert
  // plan cannot green-light the gate).
  for (const auto& [sched_name, plan] : schedules) {
    for (const Target& t : targets) {
      const PayloadReport r = t.run(&plan);
      const uint64_t injected = r.faults.drops + r.faults.spikes;
      const bool pass = r.ok() && injected > 0;
      std::printf("  %-16s %-13s bit_exact=%d violations=%zu drops=%llu "
                  "spikes=%llu retries=%llu\n",
                  sched_name.c_str(), t.name, r.bit_exact ? 1 : 0,
                  r.violations, (unsigned long long)r.faults.drops,
                  (unsigned long long)r.faults.spikes,
                  (unsigned long long)r.faults.retries);
      const std::string key =
          "multinode.faults." + sched_name + "." + t.name;
      report->Record(key + ".ok", pass ? 1.0 : 0.0);
      report->Record(key + ".retries", static_cast<double>(r.faults.retries));
      report->Record(key + ".drops", static_cast<double>(r.faults.drops));
      report->Record(key + ".spikes", static_cast<double>(r.faults.spikes));
      report->Record(key + ".timeouts",
                     static_cast<double>(r.faults.timeouts));
      report->Record(key + ".checker_retired",
                     static_cast<double>(r.checker_retired));
      report->Record(key + ".checker_live",
                     static_cast<double>(r.checker_live));
      ok = ok && pass;
    }
  }

  // Rail death at t=0: one of four rails dead for the whole run. The rail
  // schedulers apportion every chunk across the three survivors, so a
  // bandwidth-bound stream pays at most 4/3 (+10% pipeline headroom).
  const double bound = 4.0 / 3.0 * 1.10;
  struct DeathCase {
    const char* name;
    const Target* target;
  };
  const DeathCase deaths[] = {{"hier_ag", &targets[0]},
                              {"hier_rs", &targets[1]}};
  for (const DeathCase& d : deaths) {
    const PayloadReport clean = d.target->run(nullptr);
    sim::FaultPlan death;
    death.DegradeRail("nic", /*port=*/-1, /*rail=*/3, /*at=*/0,
                      /*fraction=*/0.0);
    const PayloadReport r = d.target->run(&death);
    const double ratio = static_cast<double>(r.makespan) /
                         static_cast<double>(clean.makespan);
    const bool pass = r.ok() && ratio <= bound;
    std::printf("  rail_death_t0    %-13s bit_exact=%d violations=%zu "
                "ratio=%.3f (bound %.3f)\n",
                d.name, r.bit_exact ? 1 : 0, r.violations, ratio, bound);
    report->Record(std::string("multinode.faults.rail_death_t0.") + d.name +
                       ".ok",
                   pass ? 1.0 : 0.0);
    report->Record(std::string("multinode.faults.rail_death_t0.") + d.name +
                       ".ratio",
                   ratio);
    ok = ok && pass;

    // Mid-run death: the failover replans remaining chunks and flows caught
    // in flight on the dead rail park and recover via ack-timeout; gate on
    // correctness + completion. Early enough that the NIC stage is still
    // active (by half the makespan the rail streams have drained).
    sim::FaultPlan mid;
    mid.DegradeRail("nic", /*port=*/-1, /*rail=*/1,
                    /*at=*/clean.makespan / 8, /*fraction=*/0.0);
    const PayloadReport m = d.target->run(&mid);
    std::printf("  rail_death_mid   %-13s bit_exact=%d violations=%zu "
                "retries=%llu\n",
                d.name, m.bit_exact ? 1 : 0, m.violations,
                (unsigned long long)m.faults.retries);
    report->Record(std::string("multinode.faults.rail_death_mid.") + d.name +
                       ".ok",
                   m.ok() ? 1.0 : 0.0);
    ok = ok && m.ok();
  }

  std::printf("%s\n\n", ok ? "fault sweep OK" : "fault sweep FAILED");
  return ok;
}

// Fabric timeline + critical-path profiler gate: re-run two representative
// functional workloads with one TraceRecorder attached (the fused
// GEMM+hier-RS kernel at pid base 0, HierReduceScatter at pid base 100 —
// disjoint pid blocks in one timeline), then audit the recording
// end-to-end: the serialized chrome-trace JSON must parse, the
// producer -> ring chunk -> rail chunk -> reduce flow chain must be present
// (>= 3 arrows), the profiler's overlap numbers must be internally
// consistent, and re-running both workloads *without* the recorder must
// reproduce the traced makespans bitwise (tracing is observation only).
// With --faults, a third traced run carries an active FaultPlan and the
// timeline must surface fault.* instants. `--trace <path>` saves the
// timeline; the fabric.* keys land in --json and scripts/ci.sh gates them.
bool RunTimelineProfile(const tilelink::sim::MachineSpec& spec,
                        tilelink::bench::BenchReport* report,
                        bool with_faults) {
  using namespace tilelink;
  using namespace tilelink::multinode;
  bool ok = true;
  std::printf("=== Fabric timeline + critical-path profiler ===\n");

  sim::TraceRecorder rec;
  tl::GemmHierRsConfig small;
  small.m = static_cast<int64_t>(spec.num_devices) * 16;
  small.k = 16;
  small.n = 16;
  small.gemm = {8, 16, 8};
  small.rs_block_m = 8;
  const HierConfig cfg;
  const int64_t tiles = 24;
  const uint64_t tile_bytes = 64 << 10;
  const int64_t tile_elems = 128;
  const PayloadReport fused =
      ValidateGemmHierRs(spec, small, nullptr, &rec, /*trace_pid_base=*/0);
  const PayloadReport hrs = ValidateHierReduceScatter(
      spec, tiles, tile_bytes, tile_elems, cfg, nullptr, &rec,
      /*trace_pid_base=*/100);
  ok = ok && fused.ok() && hrs.ok();

  std::string err;
  const bool valid = sim::TraceRecorder::ValidateJson(rec.ToJson(), &err);
  if (!valid) std::printf("  trace JSON invalid: %s\n", err.c_str());
  const int chain = sim::LongestFlowChain(rec);
  const sim::Profile prof = sim::BuildProfile(rec);
  std::string why;
  const bool consistent = prof.Consistent(&why);
  if (!consistent) std::printf("  profile inconsistent: %s\n", why.c_str());

  std::printf("  events=%zu json_valid=%d flow_chain=%d (need >= 3)\n",
              rec.size(), valid ? 1 : 0, chain);
  std::printf("  compute_util=%.3f wire_util=%.3f exposed_comm_frac=%.3f\n",
              prof.compute_util, prof.wire_util, prof.exposed_comm_frac);
  std::printf("%s", sim::FormatCriticalPath(prof).c_str());

  report->Record("fabric.trace_events", static_cast<double>(rec.size()));
  report->Record("fabric.trace_valid", valid ? 1.0 : 0.0);
  report->Record("fabric.flow_chain", static_cast<double>(chain));
  report->Record("fabric.compute_util", prof.compute_util);
  report->Record("fabric.wire_util", prof.wire_util);
  report->Record("fabric.exposed_comm_frac", prof.exposed_comm_frac);
  report->Record("fabric.critical_path_ns",
                 static_cast<double>(prof.critical_path));
  report->Record("fabric.critical_span_ns",
                 static_cast<double>(prof.critical_span));
  report->Record("fabric.makespan_ns", static_cast<double>(prof.makespan));
  ok = ok && valid && chain >= 3 && consistent &&
       prof.critical_path <= prof.makespan;

  // Pay-for-use gate: untraced re-runs must land on bitwise-identical
  // makespans — attaching the recorder may not perturb scheduling.
  const PayloadReport fused_quiet = ValidateGemmHierRs(spec, small);
  const PayloadReport hrs_quiet = ValidateHierReduceScatter(
      spec, tiles, tile_bytes, tile_elems, cfg);
  const bool invariant = fused_quiet.makespan == fused.makespan &&
                         hrs_quiet.makespan == hrs.makespan;
  std::printf("  trace-off makespans identical: %d\n", invariant ? 1 : 0);
  report->Record("fabric.trace_invariant", invariant ? 1.0 : 0.0);
  ok = ok && invariant;

  if (with_faults) {
    sim::MachineSpec fspec = spec;
    fspec.nic_rails = 4;
    HierConfig fcfg;
    fcfg.nic_chunk_tiles = 4;
    fcfg.staging_depth = 12;
    sim::FaultPlan plan;
    plan.RandomTransients("nic", /*seed=*/1ull, /*drop_prob=*/0.08,
                          /*spike_prob=*/0.10, /*spike_mult=*/3.0);
    const PayloadReport fr =
        ValidateHierAllGather(fspec, /*num_tiles=*/48, 512 << 10, tile_elems,
                              fcfg, &plan, &rec, /*trace_pid_base=*/200);
    std::size_t instants = 0;
    for (const auto& e : rec.events()) {
      if (e.phase == sim::TraceRecorder::Phase::kInstant &&
          e.name.rfind("fault.", 0) == 0) {
        ++instants;
      }
    }
    std::printf("  fault instants=%zu (must be >= 1)\n", instants);
    report->Record("fabric.fault_instants", static_cast<double>(instants));
    ok = ok && fr.ok() && instants >= 1;
  }

  if (!report->trace_path().empty()) {
    rec.Save(report->trace_path());
    std::printf("  trace written to %s (%zu events)\n",
                report->trace_path().c_str(), rec.size());
  }
  std::printf("%s\n\n",
              ok ? "timeline profile OK" : "timeline profile FAILED");
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tilelink;
  using namespace tilelink::bench;
  BenchReport report(argc, argv);
  const sim::MachineSpec spec = sim::MachineSpec::H800x16();
  const multinode::HierConfig cfg;
  bool ok = true;
  bool faults_flag = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--payload") == 0) {
      ok = RunPayloadValidation(spec, &report) && ok;
    } else if (std::strcmp(argv[i], "--fused") == 0) {
      ok = RunFusedGate(spec, &report) && ok;
    } else if (std::strcmp(argv[i], "--ag-fused") == 0) {
      ok = RunAgFusedGate(spec, &report) && ok;
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      faults_flag = true;
      ok = RunFaultSweep(spec, &report) && ok;
    }
  }
  ok = RunTimelineProfile(spec, &report, faults_flag) && ok;

  std::printf("=== Multi-node fabric: 2x8 H800, hierarchical vs flat ===\n");
  ResultTable table("tile-granular collectives (2x8, per-rank shard)",
                    {"hier", "flat"});
  struct Shape {
    const char* name;
    int64_t tiles;
    uint64_t tile_bytes;
  };
  // 4 MiB to 64 MiB per-rank shards: the AG/RS volumes of the paper's
  // figure-8/11 layer shapes at TP=8.
  const Shape shapes[] = {{"ag_4MiB", 16, 256 << 10},
                          {"ag_16MiB", 32, 512 << 10},
                          {"ag_64MiB", 64, 1 << 20}};
  for (const Shape& s : shapes) {
    const sim::TimeNs hier =
        multinode::SimulateHierAllGather(spec, s.tiles, s.tile_bytes, cfg);
    const sim::TimeNs flat =
        multinode::SimulateFlatAllGather(spec, s.tiles, s.tile_bytes, cfg);
    table.Add(s.name, "hier", ToMsD(hier));
    table.Add(s.name, "flat", ToMsD(flat));
    ok = ok && hier < flat;
    const std::string rs_name =
        std::string("rs") + (s.name + 2);  // same volumes, RS direction
    const sim::TimeNs hier_rs = multinode::SimulateHierReduceScatter(
        spec, s.tiles, s.tile_bytes, cfg);
    const sim::TimeNs flat_rs = multinode::SimulateFlatReduceScatter(
        spec, s.tiles, s.tile_bytes, cfg);
    table.Add(rs_name, "hier", ToMsD(hier_rs));
    table.Add(rs_name, "flat", ToMsD(flat_rs));
    ok = ok && hier_rs < flat_rs;
  }
  // Relative view: flat_time / hier_time, higher means hierarchy wins more.
  table.Print("flat");
  table.Export(&report, "multinode.collectives", "flat");

  std::printf("\n=== DP gradient sync: NIC-knob search vs defaults ===\n");
  std::printf("%-12s %13s %13s %9s  %s\n", "grad bytes", "default", "tuned",
              "ratio", "tuned knobs");
  const tl::TuneCandidate defaults = multinode::DefaultDpSyncCandidate();
  for (uint64_t bytes : {48ull << 20, 128ull << 20, 448ull << 20}) {
    const sim::TimeNs def = multinode::SimulateDpSync(spec, bytes, defaults);
    const tl::TuneResult r = multinode::TuneDpSync(
        spec, bytes, tl::TuningSpace::MultiNode(), defaults);
    const double ratio = static_cast<double>(def) /
                         static_cast<double>(r.best_cost);
    std::printf("%9lluMiB %11.3fms %11.3fms %8.2fx  nic_chunk=%d staging=%d\n",
                (unsigned long long)(bytes >> 20), ToMsD(def),
                ToMsD(r.best_cost), ratio, r.best.nic_chunk_tiles,
                r.best.staging_depth);
    const std::string prefix =
        "multinode.dp_sync." + std::to_string(bytes >> 20) + "MiB";
    report.Record(prefix + ".default_ms", ToMsD(def));
    report.Record(prefix + ".tuned_ms", ToMsD(r.best_cost));
    report.Record(prefix + ".speedup", ratio);
    ok = ok && r.best_cost <= def;
  }

  report.WriteJson();
  if (!ok) {
    std::printf("\nFAIL: hierarchical lost to flat, a tuned DP-sync config "
                "lost to the hand-picked defaults, (with --payload) the "
                "functional validation failed, (with --fused) the fused "
                "GEMM+hier-RS kernel lost to the layer-level compose or its "
                "functional run failed, (with --ag-fused) the generated "
                "hier-AG+GEMM kernel lost to the compose or its functional/"
                "faulted run failed, or the fabric timeline/profiler "
                "gate failed.\n");
    return 1;
  }
  std::printf("\nOK: hierarchical beats flat at 2x8; tuned DP-sync configs "
              "are never worse than the defaults.\n");
  return 0;
}
