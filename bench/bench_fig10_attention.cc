// Figure 10: sequence-parallel self-attention on 8xH800 — Torch (eager,
// non-overlap), RingAttention, TileLink — across 16k..128k sequence lengths,
// plus the overlap ratio
//   (comp_only + comm_only - overlap) / comm_only.
#include "baselines/attention_baselines.h"
#include "bench/bench_common.h"
#include "bench/bench_shapes.h"
#include "tilelink/kernels/ag_attention.h"

namespace tilelink::bench {
namespace {

double TorchMs(int heads, int64_t head_dim, int64_t seq) {
  rt::World world = MakeH800x8();
  baselines::AttentionConfig cfg;
  cfg.batch_heads = heads;
  cfg.seq = seq;
  cfg.head_dim = head_dim;
  cfg.block_kv = 2048;  // coarse event granularity
  baselines::TorchAttention bench(world, cfg);
  return ToMsD(world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); }));
}

double RingMs(int heads, int64_t head_dim, int64_t seq) {
  rt::World world = MakeH800x8();
  baselines::AttentionConfig cfg;
  cfg.batch_heads = heads;
  cfg.seq = seq;
  cfg.head_dim = head_dim;
  cfg.block_kv = 2048;
  baselines::RingAttention bench(world, cfg);
  return ToMsD(world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); }));
}

double TileLinkMs(int heads, int64_t head_dim, int64_t seq, bool skip_comm,
                  bool comm_only) {
  rt::World world = MakeH800x8();
  tl::AgAttentionConfig cfg;
  cfg.batch_heads = heads;
  cfg.seq = seq;
  cfg.head_dim = head_dim;
  cfg.block_kv = 2048;
  cfg.skip_comm = skip_comm;
  cfg.comm_only = comm_only;
  tl::AgAttention bench(world, cfg);
  return ToMsD(world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); }));
}

}  // namespace
}  // namespace tilelink::bench

int main(int argc, char** argv) {
  using namespace tilelink::bench;
  BenchReport report(argc, argv);
  for (const AttnShape& a : Table4Attn()) {
    ResultTable table("Figure 10: " + a.name + " (heads=" +
                          std::to_string(a.heads) + ", head_dim=128, 8xH800)",
                      {"Torch", "RingAttn", "TileLink"});
    std::printf("\n%s overlap ratios:\n", a.name.c_str());
    for (int64_t seq : a.seq_lens) {
      const double torch = TorchMs(a.heads, a.head_dim, seq);
      const double ring = RingMs(a.heads, a.head_dim, seq);
      const double tl = TileLinkMs(a.heads, a.head_dim, seq, false, false);
      const double comp_only =
          TileLinkMs(a.heads, a.head_dim, seq, true, false);
      const double comm_only =
          TileLinkMs(a.heads, a.head_dim, seq, false, true);
      const std::string row = std::to_string(seq / 1024) + "k";
      table.Add(row, "Torch", torch);
      table.Add(row, "RingAttn", ring);
      table.Add(row, "TileLink", tl);
      const double ratio = (comp_only + comm_only - tl) / comm_only;
      std::printf("  seq=%-7s overlap_ratio=%.3f  (comp=%.3fms comm=%.3fms "
                  "overlap=%.3fms)\n",
                  row.c_str(), ratio, comp_only, comm_only, tl);
      report.Record("fig10." + a.name + "." + row + ".overlap_ratio", ratio);
    }
    table.Print("Torch");
    table.Export(&report, "fig10." + a.name, "Torch");
  }
  report.WriteJson();
  std::printf(
      "\nPaper reference (Fig 10): TileLink 5.04x over Torch, 1.97x over "
      "RingAttn (geomean across 16k-128k); average overlap ratio ~43.9%%.\n");
  return 0;
}
