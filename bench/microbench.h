// Vendored header-only micro-benchmark harness.
//
// Implements the subset of the Google Benchmark API that bench_micro_sim
// uses (BENCHMARK, BENCHMARK_MAIN, State ranges/counters, DoNotOptimize) so
// the benchmark always builds without an external dependency. The runner
// auto-scales iteration counts until each benchmark accumulates kMinTimeNs
// of wall clock, then reports ns/iter, items/sec and user counters. Pass
// `--json <path>` to also write the results as a flat JSON object (used by
// scripts/ci.sh to track the perf trajectory across PRs).
#pragma once

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

namespace benchmark {

enum TimeUnit { kNanosecond, kMicrosecond, kMillisecond, kSecond };

// Keeps the optimizer from discarding a computed value.
template <typename T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}
template <typename T>
inline void DoNotOptimize(T& value) {
  asm volatile("" : "+r,m"(value) : : "memory");
}

class State {
 public:
  State(int64_t max_iterations, std::vector<int64_t> args)
      : max_iterations_(max_iterations), args_(std::move(args)) {}

  // Range-for protocol: `for (auto _ : state)` runs the loop body
  // max_iterations_ times; the first dereference starts the timer and
  // exhaustion stops it, so setup before the loop is not timed.
  struct iterator {
    State* state;
    int64_t remaining;
    // Non-trivial destructor so `for (auto _ : state)` does not trigger
    // -Wunused-variable on the loop variable.
    struct Value {
      ~Value() {}
    };
    bool operator!=(const iterator& other) const {
      if (remaining != 0) return true;
      state->StopTimer();
      (void)other;
      return false;
    }
    iterator& operator++() {
      --remaining;
      return *this;
    }
    Value operator*() const { return {}; }
  };
  iterator begin() {
    StartTimer();
    return iterator{this, max_iterations_};
  }
  iterator end() { return iterator{this, 0}; }

  int64_t range(size_t i = 0) const {
    return i < args_.size() ? args_[i] : 0;
  }
  int64_t iterations() const { return max_iterations_; }
  void SetItemsProcessed(int64_t items) { items_processed_ = items; }
  int64_t items_processed() const { return items_processed_; }
  int64_t elapsed_ns() const { return elapsed_ns_; }
  const std::vector<int64_t>& args() const { return args_; }

  std::map<std::string, double> counters;

 private:
  void StartTimer() {
    start_ = std::chrono::steady_clock::now();
  }
  void StopTimer() {
    elapsed_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
  }

  int64_t max_iterations_ = 1;
  std::vector<int64_t> args_;
  int64_t items_processed_ = 0;
  int64_t elapsed_ns_ = 0;
  std::chrono::steady_clock::time_point start_;
};

using Function = void (*)(State&);

namespace internal {

struct Registration {
  std::string name;
  Function fn = nullptr;
  std::vector<std::vector<int64_t>> args_list;  // one run per entry
  TimeUnit unit = kNanosecond;
};

inline std::vector<Registration*>& Registry() {
  static std::vector<Registration*> registry;
  return registry;
}

}  // namespace internal

// Fluent registration handle returned by the BENCHMARK macro.
class Benchmark {
 public:
  explicit Benchmark(internal::Registration* reg) : reg_(reg) {}
  Benchmark* Arg(int64_t value) {
    reg_->args_list.push_back({value});
    return this;
  }
  Benchmark* Args(std::vector<int64_t> values) {
    reg_->args_list.push_back(std::move(values));
    return this;
  }
  Benchmark* Unit(TimeUnit unit) {
    reg_->unit = unit;
    return this;
  }

 private:
  internal::Registration* reg_;
};

namespace internal {

inline Benchmark* RegisterBenchmarkInternal(const char* name, Function fn) {
  auto* reg = new Registration;  // lives for the process
  reg->name = name;
  reg->fn = fn;
  Registry().push_back(reg);
  return new Benchmark(reg);
}

struct RunResult {
  std::string name;
  double ns_per_iter = 0.0;
  int64_t iterations = 0;
  double items_per_second = 0.0;
  std::map<std::string, double> counters;
};

inline RunResult RunOne(const Registration& reg,
                        const std::vector<int64_t>& args) {
  constexpr int64_t kMinTimeNs = 200'000'000;  // 0.2 s per benchmark
  constexpr int64_t kMaxIterations = 1'000'000'000;
  int64_t iters = 1;
  State state(1, args);
  for (;;) {
    state = State(iters, args);
    reg.fn(state);
    if (state.elapsed_ns() >= kMinTimeNs || iters >= kMaxIterations) break;
    // Scale toward the time budget with 40% headroom, at least 2x.
    const double per_iter =
        static_cast<double>(state.elapsed_ns()) / static_cast<double>(iters);
    int64_t next = per_iter > 0.0
                       ? static_cast<int64_t>(1.4 * kMinTimeNs / per_iter)
                       : iters * 10;
    if (next < iters * 2) next = iters * 2;
    if (next > kMaxIterations) next = kMaxIterations;
    iters = next;
  }
  RunResult r;
  r.name = reg.name;
  for (int64_t a : args) {
    r.name += '/';
    r.name += std::to_string(a);
  }
  r.iterations = state.iterations();
  r.ns_per_iter = static_cast<double>(state.elapsed_ns()) /
                  static_cast<double>(state.iterations());
  if (state.items_processed() > 0 && state.elapsed_ns() > 0) {
    r.items_per_second = static_cast<double>(state.items_processed()) * 1e9 /
                         static_cast<double>(state.elapsed_ns());
  }
  r.counters = state.counters;
  return r;
}

inline void PrintResult(const Registration& reg, const RunResult& r) {
  double t = r.ns_per_iter;
  const char* unit = "ns";
  switch (reg.unit) {
    case kNanosecond:
      break;
    case kMicrosecond:
      t /= 1e3;
      unit = "us";
      break;
    case kMillisecond:
      t /= 1e6;
      unit = "ms";
      break;
    case kSecond:
      t /= 1e9;
      unit = "s";
      break;
  }
  std::string extra;
  if (r.items_per_second > 0.0) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " items/s=%.4g", r.items_per_second);
    extra += buf;
  }
  for (const auto& [key, value] : r.counters) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), " %s=%.4g", key.c_str(), value);
    extra += buf;
  }
  std::printf("%-40s %12.1f %-2s %12" PRId64 "%s\n", r.name.c_str(), t, unit,
              r.iterations, extra.c_str());
}

inline std::string& JsonPath() {
  static std::string path;
  return path;
}

inline void WriteJson(const std::vector<RunResult>& results) {
  if (JsonPath().empty()) return;
  std::FILE* f = std::fopen(JsonPath().c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "microbench: cannot write %s\n", JsonPath().c_str());
    return;
  }
  std::fprintf(f, "{\n");
  bool first = true;
  for (const RunResult& r : results) {
    auto emit = [&](const std::string& key, double value) {
      std::fprintf(f, "%s  \"%s\": %.17g", first ? "" : ",\n", key.c_str(),
                   value);
      first = false;
    };
    emit(r.name + ".ns_per_iter", r.ns_per_iter);
    if (r.items_per_second > 0.0) {
      emit(r.name + ".items_per_second", r.items_per_second);
    }
    for (const auto& [key, value] : r.counters) {
      emit(r.name + "." + key, value);
    }
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("microbench: wrote %s\n", JsonPath().c_str());
}

}  // namespace internal

inline void Initialize(int* argc, char** argv) {
  for (int i = 1; i + 1 < *argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      internal::JsonPath() = argv[i + 1];
    }
  }
}

inline int RunSpecifiedBenchmarks() {
  std::printf("%-40s %15s %12s\n", "Benchmark", "Time", "Iterations");
  std::printf("%s\n", std::string(70, '-').c_str());
  std::vector<internal::RunResult> results;
  for (const internal::Registration* reg : internal::Registry()) {
    std::vector<std::vector<int64_t>> runs = reg->args_list;
    if (runs.empty()) runs.push_back({});
    for (const auto& args : runs) {
      internal::RunResult r = internal::RunOne(*reg, args);
      internal::PrintResult(*reg, r);
      results.push_back(std::move(r));
    }
  }
  internal::WriteJson(results);
  return 0;
}

}  // namespace benchmark

#define BENCHMARK_PRIVATE_CONCAT2(a, b) a##b
#define BENCHMARK_PRIVATE_CONCAT(a, b) BENCHMARK_PRIVATE_CONCAT2(a, b)
#define BENCHMARK(fn)                                              \
  static ::benchmark::Benchmark* BENCHMARK_PRIVATE_CONCAT(         \
      benchmark_reg_, __LINE__) [[maybe_unused]] =                 \
      ::benchmark::internal::RegisterBenchmarkInternal(#fn, fn)

#define BENCHMARK_MAIN()                          \
  int main(int argc, char** argv) {               \
    ::benchmark::Initialize(&argc, argv);         \
    return ::benchmark::RunSpecifiedBenchmarks(); \
  }
