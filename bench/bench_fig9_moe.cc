// Figure 9: MoE layer on 8xH800 — AG+Gather+GroupGEMM (part 1),
// GroupGEMM+Scatter+TopkReduce+RS (part 2), and the full layer, comparing
// cuBLAS+NCCL, CUTLASS+NCCL, vLLM-style fused ops, and TileLink.
#include "baselines/moe_baselines.h"
#include "bench/bench_common.h"
#include "bench/bench_shapes.h"
#include "common/rng.h"
#include "tilelink/kernels/ag_moe.h"
#include "tilelink/kernels/moe_rs.h"

namespace tilelink::bench {
namespace {

double Part1Baseline(const MoeShape& s, const compute::MoeRouting& routing,
                     baselines::MoeImpl impl) {
  rt::World world = MakeH800x8();
  baselines::MoePartConfig cfg{s.s, s.h, s.i / world.size(), s.e, s.topk,
                               CoarseTiling(s.h, 128, 128)};
  baselines::MoePart1 bench(world, cfg, routing, impl);
  return ToMsD(world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); }));
}

double Part1TileLink(const MoeShape& s, const compute::MoeRouting& routing) {
  rt::World world = MakeH800x8();
  tl::AgMoeConfig cfg;
  cfg.m = s.s;
  cfg.hidden = s.h;
  cfg.n = s.i / world.size();
  cfg.num_experts = s.e;
  cfg.topk = s.topk;
  cfg.gemm = CoarseTiling(s.h, 128, 128);
  cfg.channels_per_rank = 4;
  // SM-pull: the AG dominates MoE part 1, so full-bandwidth SM copies beat
  // copy engines; the GroupGEMM is small enough that the 20 stolen SMs are
  // free.
  cfg.comm = tl::CommResource::kSmPull;
  cfg.comm_sms = 20;
  tl::AgMoe bench(world, cfg, routing);
  return ToMsD(world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); }));
}

double Part2Baseline(const MoeShape& s, const compute::MoeRouting& routing,
                     baselines::MoeImpl impl) {
  rt::World world = MakeH800x8();
  baselines::MoePartConfig cfg{s.s, s.h, s.i / world.size(), s.e, s.topk,
                               CoarseTiling(s.i / world.size(), 128, 128)};
  baselines::MoePart2 bench(world, cfg, routing, impl);
  return ToMsD(world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); }));
}

double Part2TileLink(const MoeShape& s, const compute::MoeRouting& routing) {
  rt::World world = MakeH800x8();
  tl::MoeRsConfig cfg;
  cfg.m = s.s;
  cfg.k = s.i / world.size();
  cfg.hidden = s.h;
  cfg.num_experts = s.e;
  cfg.topk = s.topk;
  cfg.gemm = CoarseTiling(cfg.k, 128, 128);
  cfg.sorted_channel_rows = 1024;
  cfg.reduce_block_tokens = 128;
  cfg.rs_block_m = 128;
  cfg.dma_push = false;  // RS push on SMs: comm-bound part, full link rate
  tl::MoeRs bench(world, cfg, routing);
  return ToMsD(world.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); }));
}

}  // namespace
}  // namespace tilelink::bench

int main(int argc, char** argv) {
  using namespace tilelink::bench;
  using namespace tilelink;
  BenchReport report(argc, argv);
  const std::vector<std::string> methods = {"cuBLAS+NCCL", "CUTLASS+NCCL",
                                            "vLLM-Op", "TileLink"};
  ResultTable p1("Figure 9a: AG+Gather+GroupGEMM on 8xH800", methods);
  ResultTable p2("Figure 9b: GroupGEMM+Scatter+TopkReduce+RS on 8xH800",
                 methods);
  ResultTable full("Figure 9c: full MoE layer on 8xH800", methods);
  for (const MoeShape& s : Table4Moe()) {
    Rng rng(2024);
    compute::MoeRouting routing =
        compute::RandomRouting(s.s, s.e, s.topk, rng);
    const double c1 = Part1Baseline(s, routing, baselines::MoeImpl::kCublas);
    const double t1 = Part1Baseline(s, routing, baselines::MoeImpl::kCutlass);
    const double v1 = Part1Baseline(s, routing, baselines::MoeImpl::kVllm);
    const double l1 = Part1TileLink(s, routing);
    p1.Add(s.name, "cuBLAS+NCCL", c1);
    p1.Add(s.name, "CUTLASS+NCCL", t1);
    p1.Add(s.name, "vLLM-Op", v1);
    p1.Add(s.name, "TileLink", l1);
    const double c2 = Part2Baseline(s, routing, baselines::MoeImpl::kCublas);
    const double t2 = Part2Baseline(s, routing, baselines::MoeImpl::kCutlass);
    const double v2 = Part2Baseline(s, routing, baselines::MoeImpl::kVllm);
    const double l2 = Part2TileLink(s, routing);
    p2.Add(s.name, "cuBLAS+NCCL", c2);
    p2.Add(s.name, "CUTLASS+NCCL", t2);
    p2.Add(s.name, "vLLM-Op", v2);
    p2.Add(s.name, "TileLink", l2);
    full.Add(s.name, "cuBLAS+NCCL", c1 + c2);
    full.Add(s.name, "CUTLASS+NCCL", t1 + t2);
    full.Add(s.name, "vLLM-Op", v1 + v2);
    full.Add(s.name, "TileLink", l1 + l2);
  }
  p1.Print("cuBLAS+NCCL");
  p2.Print("cuBLAS+NCCL");
  full.Print("cuBLAS+NCCL");
  p1.Export(&report, "fig9.part1", "cuBLAS+NCCL");
  p2.Export(&report, "fig9.part2", "cuBLAS+NCCL");
  full.Export(&report, "fig9.moe", "cuBLAS+NCCL");
  report.WriteJson();
  std::printf(
      "\nPaper reference (Fig 9): part 1 — vLLM ~9.82x over cuBLAS, TileLink "
      "1.51x over vLLM; part 2 — TileLink 1.31x over vLLM, 10.56x over "
      "CUTLASS; full layer — TileLink 1.14x over vLLM, max 20.76x over "
      "cuBLAS+NCCL. FLUX/Async-TP do not support MoE.\n");
  return 0;
}
