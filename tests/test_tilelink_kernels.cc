// Integration tests: every TileLink overlapped kernel vs. a serial reference,
// across communication resources, world sizes and shapes. These are the
// load-bearing correctness tests of the reproduction — the overlapped
// schedules must produce bit-identical (GEMM) or fp-close (attention)
// numerics while the consistency checker observes no violations.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compute/flash_attention.h"
#include "compute/gemm.h"
#include "compute/group_gemm.h"
#include "compute/memops.h"
#include "runtime/world.h"
#include "tensor/tensor_ops.h"
#include "tilelink/kernels/ag_attention.h"
#include "tilelink/kernels/ag_gemm.h"
#include "tilelink/kernels/ag_moe.h"
#include "tilelink/kernels/gemm_rs.h"
#include "compute/tile_math.h"
#include "tilelink/kernels/moe_rs.h"

namespace tilelink::tl {
namespace {

using rt::ExecMode;
using rt::RankCtx;
using rt::World;

// ---------------------------------------------------------------------- //
// AG + GEMM
// ---------------------------------------------------------------------- //

struct AgGemmParam {
  int ranks;
  CommResource comm;
};

class AgGemmTest : public ::testing::TestWithParam<AgGemmParam> {};

TEST_P(AgGemmTest, MatchesSerialReference) {
  const auto [R, comm] = GetParam();
  sim::MachineSpec spec = sim::MachineSpec::Test(R, /*sms=*/16);
  World world(spec, ExecMode::kFunctional);
  world.checker().set_enabled(true);
  AgGemmConfig cfg;
  cfg.m = 64 * R;
  cfg.k = 32;
  cfg.n = 48;
  cfg.gemm = compute::GemmTiling{32, 16, 16};
  cfg.comm_tile_m = 16;
  cfg.comm = comm;
  cfg.comm_sms = 4;
  AgGemm kernel(world, cfg);
  Rng rng(31);
  for (int r = 0; r < R; ++r) {
    FillRandom(kernel.a_shards()[static_cast<size_t>(r)], rng, 0.5f);
    FillRandom(kernel.b()[static_cast<size_t>(r)], rng, 0.5f);
  }
  const sim::TimeNs t = world.RunSpmd(
      [&](RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });
  EXPECT_GT(t, 0);
  EXPECT_TRUE(world.checker().violations().empty());
  // Reference: gather all shards then per-rank GEMM with that rank's B.
  for (int r = 0; r < R; ++r) {
    Tensor gathered = Tensor::Alloc(world.device(r), "ref_a",
                                    {cfg.m, cfg.k}, DType::kBF16);
    for (int p = 0; p < R; ++p) {
      Tensor dst = gathered.Slice(0, p * (cfg.m / R), cfg.m / R);
      CopyTensor(kernel.a_shards()[static_cast<size_t>(p)], dst);
    }
    // The gathered activation must match what the comm role produced.
    EXPECT_EQ(MaxAbsDiff(gathered, kernel.a_full()[static_cast<size_t>(r)]),
              0.0f)
        << "rank " << r << " gather mismatch";
    Tensor want = Tensor::Alloc(world.device(r), "ref_c", {cfg.m, cfg.n},
                                DType::kBF16);
    compute::GemmRef(gathered, kernel.b()[static_cast<size_t>(r)], want);
    EXPECT_LT(MaxAbsDiff(kernel.c()[static_cast<size_t>(r)], want), 1e-4f)
        << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, AgGemmTest,
    ::testing::Values(AgGemmParam{2, CommResource::kSmPull},
                      AgGemmParam{2, CommResource::kSmPush},
                      AgGemmParam{2, CommResource::kDma},
                      AgGemmParam{4, CommResource::kSmPull},
                      AgGemmParam{4, CommResource::kSmPush},
                      AgGemmParam{4, CommResource::kDma},
                      AgGemmParam{8, CommResource::kDma}),
    [](const ::testing::TestParamInfo<AgGemmParam>& info) {
      const char* comm = info.param.comm == CommResource::kSmPull ? "pull"
                         : info.param.comm == CommResource::kSmPush
                             ? "push"
                             : "dma";
      return "R" + std::to_string(info.param.ranks) + "_" + comm;
    });

TEST(AgGemmListing, AcquireAndReleasePlacement) {
  World world(sim::MachineSpec::Test(2, 8), ExecMode::kFunctional);
  AgGemmConfig cfg;
  cfg.m = 64;
  cfg.k = 32;
  cfg.n = 32;
  cfg.gemm = compute::GemmTiling{32, 32, 16};
  cfg.comm_tile_m = 32;
  cfg.comm = CommResource::kSmPull;
  cfg.comm_sms = 2;
  AgGemm kernel(world, cfg);
  const std::string& listing = kernel.listing();
  // consumer_tile_wait (acquire) must appear before the acquire-load, and
  // the producer notify (release) after the pull.
  const size_t wait_pos = listing.find("consumer_tile_wait");
  const size_t load_pos = listing.find("ld.global.acquire.b128");
  const size_t pull_pos = listing.find("tile_pull_data");
  const size_t notify_pos = listing.find("producer_tile_notify");
  ASSERT_NE(wait_pos, std::string::npos);
  ASSERT_NE(load_pos, std::string::npos);
  ASSERT_NE(pull_pos, std::string::npos);
  ASSERT_NE(notify_pos, std::string::npos);
  EXPECT_LT(pull_pos, notify_pos);  // release after data movement
  EXPECT_LT(wait_pos, load_pos);    // acquire before consumer load
}

// ---------------------------------------------------------------------- //
// GEMM + ring ReduceScatter
// ---------------------------------------------------------------------- //

struct GemmRsParam {
  int ranks;
  bool dma_push;
};

class GemmRsTest : public ::testing::TestWithParam<GemmRsParam> {};

TEST_P(GemmRsTest, MatchesSerialReference) {
  const auto [R, dma] = GetParam();
  World world(sim::MachineSpec::Test(R, 16), ExecMode::kFunctional);
  world.checker().set_enabled(true);
  GemmRsConfig cfg;
  cfg.m = 64 * R;
  cfg.k = 24;
  cfg.n = 40;
  cfg.gemm = compute::GemmTiling{32, 16, 8};
  cfg.rs_block_m = 32;
  cfg.comm_sms = 4;
  cfg.dma_push = dma;
  GemmRs kernel(world, cfg);
  Rng rng(37);
  for (int r = 0; r < R; ++r) {
    FillRandom(kernel.a()[static_cast<size_t>(r)], rng, 0.3f);
    FillRandom(kernel.b()[static_cast<size_t>(r)], rng, 0.3f);
  }
  world.RunSpmd([&](RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });
  EXPECT_TRUE(world.checker().violations().empty());
  // Reference: sum over ranks of a[p] @ b[p], row block r to rank r.
  const int64_t m_per = cfg.m / R;
  Tensor total = Tensor::Alloc(world.device(0), "ref_total",
                               {cfg.m, cfg.n}, DType::kBF16);
  Tensor tmp = Tensor::Alloc(world.device(0), "ref_tmp", {cfg.m, cfg.n},
                             DType::kBF16);
  FillConstant(total, 0.0f);
  for (int p = 0; p < R; ++p) {
    compute::GemmRef(kernel.a()[static_cast<size_t>(p)],
                     kernel.b()[static_cast<size_t>(p)], tmp);
    compute::AddTile(tmp, total, 0, cfg.m, 0, cfg.n, /*accumulate=*/true);
  }
  for (int r = 0; r < R; ++r) {
    Tensor want = total.Slice(0, r * m_per, m_per);
    EXPECT_LT(MaxAbsDiff(kernel.out()[static_cast<size_t>(r)], want), 1e-3f)
        << "rank " << r << (dma ? " (dma)" : " (sm)");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Variants, GemmRsTest,
    ::testing::Values(GemmRsParam{2, false}, GemmRsParam{2, true},
                      GemmRsParam{4, false}, GemmRsParam{4, true},
                      GemmRsParam{8, false}, GemmRsParam{8, true}),
    [](const ::testing::TestParamInfo<GemmRsParam>& info) {
      return "R" + std::to_string(info.param.ranks) +
             (info.param.dma_push ? "_dma" : "_sm");
    });

TEST(GemmRsListing, ContainsPeerSignals) {
  World world(sim::MachineSpec::Test(2, 8), ExecMode::kFunctional);
  GemmRsConfig cfg;
  cfg.m = 128;
  cfg.k = 16;
  cfg.n = 16;
  cfg.gemm = compute::GemmTiling{32, 16, 8};
  cfg.rs_block_m = 32;
  cfg.comm_sms = 2;
  GemmRs kernel(world, cfg);
  EXPECT_NE(kernel.listing().find("peer_tile_wait"), std::string::npos);
  EXPECT_NE(kernel.listing().find("peer_tile_notify"), std::string::npos);
  EXPECT_NE(kernel.listing().find("producer_tile_notify"), std::string::npos);
}

// ---------------------------------------------------------------------- //
// AG + MoE (dynamic mapping)
// ---------------------------------------------------------------------- //

class AgMoeTest : public ::testing::TestWithParam<int> {};

TEST_P(AgMoeTest, MatchesGroupGemmReference) {
  const int R = GetParam();
  World world(sim::MachineSpec::Test(R, 16), ExecMode::kFunctional);
  world.checker().set_enabled(true);
  AgMoeConfig cfg;
  cfg.m = 32 * R;
  cfg.hidden = 24;
  cfg.n = 32;
  cfg.num_experts = 4;
  cfg.topk = 2;
  cfg.gemm = compute::GemmTiling{16, 16, 8};
  cfg.comm_tile_m = 16;
  cfg.comm = CommResource::kSmPull;
  cfg.comm_sms = 4;
  Rng rng(41);
  compute::MoeRouting routing =
      compute::RandomRouting(cfg.m, cfg.num_experts, cfg.topk, rng);
  AgMoe kernel(world, cfg, routing);
  for (int r = 0; r < R; ++r) {
    FillRandom(kernel.token_shards()[static_cast<size_t>(r)], rng, 0.4f);
    FillRandom(kernel.weights()[static_cast<size_t>(r)], rng, 0.4f);
  }
  world.RunSpmd([&](RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });
  EXPECT_TRUE(world.checker().violations().empty());
  for (int r = 0; r < R; ++r) {
    Tensor gathered = Tensor::Alloc(world.device(r), "ref_t",
                                    {cfg.m, cfg.hidden}, DType::kBF16);
    for (int p = 0; p < R; ++p) {
      Tensor dst = gathered.Slice(0, p * (cfg.m / R), cfg.m / R);
      CopyTensor(kernel.token_shards()[static_cast<size_t>(p)], dst);
    }
    Tensor want = Tensor::Alloc(world.device(r), "ref_o",
                                {cfg.m * cfg.topk, cfg.n}, DType::kBF16);
    compute::GroupGemmRef(gathered, kernel.weights()[static_cast<size_t>(r)],
                          want, routing);
    EXPECT_LT(MaxAbsDiff(kernel.out()[static_cast<size_t>(r)], want), 1e-4f)
        << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Worlds, AgMoeTest, ::testing::Values(2, 4),
                         ::testing::PrintToStringParamName());

TEST(AgMoeDma, DmaVariantAlsoCorrect) {
  const int R = 2;
  World world(sim::MachineSpec::Test(R, 16), ExecMode::kFunctional);
  AgMoeConfig cfg;
  cfg.m = 64;
  cfg.hidden = 16;
  cfg.n = 16;
  cfg.num_experts = 2;
  cfg.topk = 1;
  cfg.gemm = compute::GemmTiling{16, 16, 8};
  cfg.comm_tile_m = 16;
  cfg.comm = CommResource::kDma;
  Rng rng(43);
  compute::MoeRouting routing =
      compute::RandomRouting(cfg.m, cfg.num_experts, cfg.topk, rng);
  AgMoe kernel(world, cfg, routing);
  for (int r = 0; r < R; ++r) {
    FillRandom(kernel.token_shards()[static_cast<size_t>(r)], rng);
    FillRandom(kernel.weights()[static_cast<size_t>(r)], rng);
  }
  world.RunSpmd([&](RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });
  Tensor gathered = Tensor::Alloc(world.device(0), "g",
                                  {cfg.m, cfg.hidden}, DType::kBF16);
  for (int p = 0; p < R; ++p) {
    Tensor dst = gathered.Slice(0, p * (cfg.m / R), cfg.m / R);
    CopyTensor(kernel.token_shards()[static_cast<size_t>(p)], dst);
  }
  Tensor want = Tensor::Alloc(world.device(0), "w",
                              {cfg.m * cfg.topk, cfg.n}, DType::kBF16);
  compute::GroupGemmRef(gathered, kernel.weights()[0], want, routing);
  EXPECT_LT(MaxAbsDiff(kernel.out()[0], want), 1e-4f);
}

// ---------------------------------------------------------------------- //
// MoE part 2: GroupGEMM + TopkReduce + RS chain
// ---------------------------------------------------------------------- //

class MoeRsTest : public ::testing::TestWithParam<int> {};

TEST_P(MoeRsTest, ThreeStageChainMatchesReference) {
  const int R = GetParam();
  World world(sim::MachineSpec::Test(R, 24), ExecMode::kFunctional);
  world.checker().set_enabled(true);
  MoeRsConfig cfg;
  cfg.m = 32 * R;
  cfg.k = 16;
  cfg.hidden = 24;
  cfg.num_experts = 4;
  cfg.topk = 2;
  cfg.gemm = compute::GemmTiling{16, 24, 8};
  cfg.sorted_channel_rows = 32;
  cfg.reduce_block_tokens = 16;
  cfg.reduce_sms = 4;
  cfg.rs_block_m = 32;
  cfg.comm_sms = 4;
  Rng rng(47);
  compute::MoeRouting routing =
      compute::RandomRouting(cfg.m, cfg.num_experts, cfg.topk, rng);
  MoeRs kernel(world, cfg, routing);
  for (int r = 0; r < R; ++r) {
    FillRandom(kernel.acts()[static_cast<size_t>(r)], rng, 0.3f);
    FillRandom(kernel.weights()[static_cast<size_t>(r)], rng, 0.3f);
  }
  world.RunSpmd([&](RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });
  EXPECT_TRUE(world.checker().violations().empty());
  // Reference: per rank expert GEMM -> weighted topk combine -> sum over
  // ranks -> row block r.
  const int64_t m_per = cfg.m / R;
  Tensor total = Tensor::Alloc(world.device(0), "ref_total",
                               {cfg.m, cfg.hidden}, DType::kBF16);
  FillConstant(total, 0.0f);
  for (int p = 0; p < R; ++p) {
    Tensor exp_out = Tensor::Alloc(world.device(p), "ref_exp",
                                   {cfg.m * cfg.topk, cfg.hidden},
                                   DType::kBF16);
    // acts are already in slot order: out[slot] = acts[slot] @ W[expert].
    for (int64_t slot = 0; slot < cfg.m * cfg.topk; ++slot) {
      const int e = routing.topk_ids[static_cast<size_t>(slot)];
      const Tensor w =
          kernel.weights()[static_cast<size_t>(p)].Select(0, e);
      for (int64_t c = 0; c < cfg.hidden; ++c) {
        float acc = 0.0f;
        for (int64_t x = 0; x < cfg.k; ++x) {
          acc += kernel.acts()[static_cast<size_t>(p)].at({slot, x}) *
                 w.at({x, c});
        }
        exp_out.at({slot, c}) = acc;
      }
    }
    Tensor combined = Tensor::Alloc(world.device(p), "ref_comb",
                                    {cfg.m, cfg.hidden}, DType::kBF16);
    compute::TopkReduceRef(exp_out, combined, routing.topk_weights, cfg.topk);
    compute::AddTile(combined, total, 0, cfg.m, 0, cfg.hidden,
                     /*accumulate=*/true);
  }
  for (int r = 0; r < R; ++r) {
    Tensor want = total.Slice(0, r * m_per, m_per);
    EXPECT_LT(MaxAbsDiff(kernel.out()[static_cast<size_t>(r)], want), 1e-3f)
        << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Worlds, MoeRsTest, ::testing::Values(2, 4),
                         ::testing::PrintToStringParamName());

// ---------------------------------------------------------------------- //
// AG KV + flash attention (host primitives)
// ---------------------------------------------------------------------- //

class AgAttentionTest : public ::testing::TestWithParam<int> {};

TEST_P(AgAttentionTest, MatchesEagerReference) {
  const int R = GetParam();
  World world(sim::MachineSpec::Test(R, 16), ExecMode::kFunctional);
  world.checker().set_enabled(true);
  AgAttentionConfig cfg;
  cfg.batch_heads = 2;
  cfg.seq = 32 * R;
  cfg.head_dim = 16;
  cfg.block_q = 16;
  cfg.block_kv = 16;
  AgAttention kernel(world, cfg);
  Rng rng(53);
  for (int r = 0; r < R; ++r) {
    FillRandom(kernel.q()[static_cast<size_t>(r)], rng, 0.4f);
    FillRandom(kernel.k_shards()[static_cast<size_t>(r)], rng, 0.4f);
    FillRandom(kernel.v_shards()[static_cast<size_t>(r)], rng, 0.4f);
  }
  world.RunSpmd([&](RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });
  EXPECT_TRUE(world.checker().violations().empty());
  const int64_t s_per = cfg.seq / R;
  for (int r = 0; r < R; ++r) {
    // Build the full K/V on the host.
    Tensor kf = Tensor::Alloc(world.device(r), "kf",
                              {cfg.batch_heads, cfg.seq, cfg.head_dim},
                              DType::kBF16);
    Tensor vf = Tensor::Alloc(world.device(r), "vf",
                              {cfg.batch_heads, cfg.seq, cfg.head_dim},
                              DType::kBF16);
    for (int p = 0; p < R; ++p) {
      Tensor kd = kf.Slice(1, p * s_per, s_per);
      Tensor vd = vf.Slice(1, p * s_per, s_per);
      CopyTensor(kernel.k_shards()[static_cast<size_t>(p)], kd);
      CopyTensor(kernel.v_shards()[static_cast<size_t>(p)], vd);
    }
    Tensor want = Tensor::Alloc(world.device(r), "w",
                                {cfg.batch_heads, s_per, cfg.head_dim},
                                DType::kBF16);
    compute::AttentionRef(kernel.q()[static_cast<size_t>(r)], kf, vf, want);
    EXPECT_LT(MaxAbsDiff(kernel.out()[static_cast<size_t>(r)], want), 2e-4f)
        << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Worlds, AgAttentionTest, ::testing::Values(2, 4),
                         ::testing::PrintToStringParamName());

// ---------------------------------------------------------------------- //
// Overlap property: fused time < serial sum, >= max of parts
// ---------------------------------------------------------------------- //

TEST(OverlapProperty, FusedAgGemmBeatsSerialAndRespectsLowerBound) {
  const int R = 4;
  auto run = [&](bool overlap) {
    World world(sim::MachineSpec::Test(R, 16), ExecMode::kTimingOnly);
    AgGemmConfig cfg;
    cfg.m = 512 * R;
    cfg.k = 256;
    cfg.n = 256;
    cfg.gemm = compute::GemmTiling{64, 64, 32};
    cfg.comm_tile_m = 64;
    cfg.comm = CommResource::kSmPull;
    cfg.comm_sms = overlap ? 4 : 4;
    AgGemm kernel(world, cfg);
    return world.RunSpmd(
        [&](RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });
  };
  const sim::TimeNs fused = run(true);
  // Serial reference: comm then compute via collectives + standalone GEMM.
  World world(sim::MachineSpec::Test(R, 16), ExecMode::kTimingOnly);
  comm::SymTensor shards, fulls, bs, cs;
  for (int r = 0; r < R; ++r) {
    shards.push_back(Tensor::Alloc(world.device(r), "s", {512, 256},
                                   DType::kBF16));
    fulls.push_back(Tensor::Alloc(world.device(r), "f", {512 * R, 256},
                                  DType::kBF16));
    bs.push_back(
        Tensor::Alloc(world.device(r), "b", {256, 256}, DType::kBF16));
    cs.push_back(Tensor::Alloc(world.device(r), "c", {512 * R, 256},
                               DType::kBF16));
  }
  const sim::TimeNs serial = world.RunSpmd([&](RankCtx& ctx) -> sim::Coro {
    co_await comm::AllGather(ctx, shards, fulls);
    compute::GemmOptions opt;
    opt.tiling = compute::GemmTiling{64, 64, 32};
    compute::LaunchGemm(ctx, *ctx.stream, fulls[static_cast<size_t>(ctx.rank)],
                        bs[static_cast<size_t>(ctx.rank)],
                        cs[static_cast<size_t>(ctx.rank)], opt);
    co_await ctx.stream->Synchronize();
  });
  EXPECT_LT(fused, serial) << "overlap must beat AG-then-GEMM";
}

TEST(Determinism, TileLinkKernelTimingIsReproducible) {
  auto run = []() {
    World world(sim::MachineSpec::Test(4, 16), ExecMode::kTimingOnly);
    GemmRsConfig cfg;
    cfg.m = 512;
    cfg.k = 128;
    cfg.n = 128;
    cfg.gemm = compute::GemmTiling{64, 64, 32};
    cfg.rs_block_m = 64;
    cfg.comm_sms = 4;
    GemmRs kernel(world, cfg);
    return world.RunSpmd(
        [&](RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace tilelink::tl
