// Builder-layer tests.
//
// 1. Golden specs: every kernel rebuilt on FusedKernelBase/RolePlan must
//    produce a compiled kernel identical (roles, block ranges, op sequence
//    — all encoded in the listing) to the snapshot captured from the
//    pre-refactor seed (tests/golden_specs.inc).
// 2. RolePlan / ResourceBudget and TileOrder unit behavior.
// 3. Autotuner: picks the cost argmin on a toy space, prunes via the lower
//    bound, and rejects infeasible candidates.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "compute/moe_routing.h"
#include "runtime/world.h"
#include "tilelink/builder/autotuner.h"
#include "tilelink/builder/kernel_tuning.h"
#include "tilelink/builder/role_plan.h"
#include "tilelink/kernels/ag_attention.h"
#include "tilelink/kernels/ag_gemm.h"
#include "tilelink/kernels/ag_moe.h"
#include "tilelink/kernels/gemm_rs.h"
#include "tilelink/kernels/moe_rs.h"
#include "tilelink/primitives.h"

namespace tilelink::tl {
namespace {

#include "golden_specs.inc"

using rt::ExecMode;
using rt::World;

// ---------------------------------------------------------------------- //
// Golden FusedKernelSpec snapshots (pre-refactor seed)
// ---------------------------------------------------------------------- //

AgGemmConfig SmallAgGemm(CommResource comm) {
  AgGemmConfig cfg;
  cfg.m = 256;
  cfg.k = 32;
  cfg.n = 48;
  cfg.gemm = compute::GemmTiling{32, 16, 16};
  cfg.comm_tile_m = 16;
  cfg.comm = comm;
  cfg.comm_sms = 4;
  return cfg;
}

TEST(GoldenSpecs, AgGemmAllResources) {
  const struct {
    const char* golden;
    CommResource comm;
  } variants[] = {{kAgGemmDmaGolden, CommResource::kDma},
                  {kAgGemmPullGolden, CommResource::kSmPull},
                  {kAgGemmPushGolden, CommResource::kSmPush}};
  for (const auto& v : variants) {
    World world(sim::MachineSpec::Test(4, 16), ExecMode::kFunctional);
    AgGemm kernel(world, SmallAgGemm(v.comm));
    EXPECT_EQ(kernel.listing(), v.golden);
  }
}

TEST(GoldenSpecs, GemmRsSmAndDma) {
  for (bool dma : {false, true}) {
    World world(sim::MachineSpec::Test(4, 16), ExecMode::kFunctional);
    GemmRsConfig cfg;
    cfg.m = 256;
    cfg.k = 24;
    cfg.n = 40;
    cfg.gemm = compute::GemmTiling{32, 16, 8};
    cfg.rs_block_m = 32;
    cfg.comm_sms = 4;
    cfg.dma_push = dma;
    GemmRs kernel(world, cfg);
    EXPECT_EQ(kernel.listing(), dma ? kGemmRsDmaGolden : kGemmRsSmGolden);
  }
}

TEST(GoldenSpecs, AgAttention) {
  World world(sim::MachineSpec::Test(2, 16), ExecMode::kFunctional);
  AgAttentionConfig cfg;
  cfg.batch_heads = 2;
  cfg.seq = 64;
  cfg.head_dim = 16;
  cfg.block_q = 16;
  cfg.block_kv = 16;
  AgAttention kernel(world, cfg);
  EXPECT_EQ(kernel.listing(), kAgAttentionGolden);
}

TEST(GoldenSpecs, AgMoePullAndDma) {
  {
    World world(sim::MachineSpec::Test(2, 16), ExecMode::kFunctional);
    AgMoeConfig cfg;
    cfg.m = 64;
    cfg.hidden = 24;
    cfg.n = 32;
    cfg.num_experts = 4;
    cfg.topk = 2;
    cfg.gemm = compute::GemmTiling{16, 16, 8};
    cfg.comm_tile_m = 16;
    cfg.comm = CommResource::kSmPull;
    cfg.comm_sms = 4;
    Rng rng(41);
    compute::MoeRouting routing =
        compute::RandomRouting(cfg.m, cfg.num_experts, cfg.topk, rng);
    AgMoe kernel(world, cfg, routing);
    EXPECT_EQ(kernel.listing(), kAgMoePullGolden);
  }
  {
    World world(sim::MachineSpec::Test(2, 16), ExecMode::kFunctional);
    AgMoeConfig cfg;
    cfg.m = 64;
    cfg.hidden = 16;
    cfg.n = 16;
    cfg.num_experts = 2;
    cfg.topk = 1;
    cfg.gemm = compute::GemmTiling{16, 16, 8};
    cfg.comm_tile_m = 16;
    cfg.comm = CommResource::kDma;
    Rng rng(43);
    compute::MoeRouting routing =
        compute::RandomRouting(cfg.m, cfg.num_experts, cfg.topk, rng);
    AgMoe kernel(world, cfg, routing);
    EXPECT_EQ(kernel.listing(), kAgMoeDmaGolden);
  }
}

TEST(GoldenSpecs, MoeRsThreeRoleChain) {
  World world(sim::MachineSpec::Test(2, 24), ExecMode::kFunctional);
  MoeRsConfig cfg;
  cfg.m = 64;
  cfg.k = 16;
  cfg.hidden = 24;
  cfg.num_experts = 4;
  cfg.topk = 2;
  cfg.gemm = compute::GemmTiling{16, 24, 8};
  cfg.sorted_channel_rows = 32;
  cfg.reduce_block_tokens = 16;
  cfg.reduce_sms = 4;
  cfg.rs_block_m = 32;
  cfg.comm_sms = 4;
  Rng rng(47);
  compute::MoeRouting routing =
      compute::RandomRouting(cfg.m, cfg.num_experts, cfg.topk, rng);
  MoeRs kernel(world, cfg, routing);
  EXPECT_EQ(kernel.listing(), kMoeRsGolden);
}

// Structural view of spec(): role names and block counts, independent of
// the listing format.
TEST(GoldenSpecs, SpecRolesAndBudgets) {
  World world(sim::MachineSpec::Test(4, 16), ExecMode::kFunctional);
  AgGemm kernel(world, SmallAgGemm(CommResource::kSmPull));
  const FusedKernelSpec& spec = kernel.spec();
  ASSERT_EQ(spec.roles.size(), 2u);
  EXPECT_EQ(spec.roles[0].name, "comm");
  EXPECT_EQ(spec.roles[0].blocks, 4);  // comm_sms
  EXPECT_EQ(spec.roles[1].name, "compute");
  EXPECT_EQ(spec.roles[1].blocks, 12);  // 16 SMs - 4 comm
  EXPECT_EQ(spec.total_blocks(), 16);
}

// Deliberate change vs the seed: SM-comm roles are capped by their comm-tile
// work, so comm_sms > tiles no longer strands idle comm blocks (gemm_rs and
// moe_rs always behaved this way; ag_gemm/ag_moe now do too).
TEST(GoldenSpecs, CommBlocksCappedByWork) {
  World world(sim::MachineSpec::Test(2, 16), ExecMode::kFunctional);
  AgGemmConfig cfg;
  cfg.m = 64;
  cfg.k = 32;
  cfg.n = 32;
  cfg.gemm = compute::GemmTiling{32, 16, 16};
  cfg.comm_tile_m = 16;  // 4 comm tiles total
  cfg.comm = CommResource::kSmPull;
  cfg.comm_sms = 12;  // more SMs than tiles
  AgGemm kernel(world, cfg);
  ASSERT_EQ(kernel.spec().roles.size(), 2u);
  EXPECT_EQ(kernel.spec().roles[0].blocks, 4);  // capped at 4 comm tiles
  EXPECT_EQ(kernel.spec().roles[1].blocks, 4);  // 2x2 gemm tiles
  EXPECT_EQ(kernel.spec().total_blocks(), 8);
}

// ---------------------------------------------------------------------- //
// RolePlan / ResourceBudget
// ---------------------------------------------------------------------- //

TEST(ResourceBudget, CommClaimsThenComputeFillsRemainder) {
  ResourceBudget budget(132);
  EXPECT_EQ(budget.ClaimComm(20, /*work_items=*/1000), 20);
  EXPECT_EQ(budget.ClaimComm(16, /*work_items=*/4), 4);  // capped by work
  EXPECT_EQ(budget.remaining(), 108);
  EXPECT_EQ(budget.ClaimCompute(1 << 20), 108);  // fills what is left
  EXPECT_EQ(budget.remaining(), 0);
}

TEST(ResourceBudget, ComputeAlwaysGetsAtLeastOneBlock) {
  ResourceBudget budget(8);
  EXPECT_EQ(budget.ClaimComm(8, 100), 8);  // misconfigured: comm takes all
  EXPECT_EQ(budget.ClaimCompute(100), 1);  // compute still runs
  ResourceBudget b2(8);
  EXPECT_EQ(b2.ClaimCompute(0), 1);  // zero tiles still get one block
}

TEST(RolePlan, BuildsRolesInOrder) {
  auto nop_program = [] {
    TileProgramBuilder b;
    b.Add(ops::Store("s", nullptr));
    return b.Build();
  };
  RolePlan plan("k", 24);
  plan.Comm("rs", 4, 100, nop_program())
      .Comm("reduce", 4, 2, nop_program())
      .Compute("gemm", 1000, nop_program());
  const FusedKernelSpec spec = plan.Build();
  ASSERT_EQ(spec.roles.size(), 3u);
  EXPECT_EQ(spec.roles[0].blocks, 4);
  EXPECT_EQ(spec.roles[1].blocks, 2);
  EXPECT_EQ(spec.roles[2].blocks, 18);
  EXPECT_EQ(spec.name, "k");
}

TEST(TileOrderTest, SwizzleRotatesSegments) {
  // 8 m-tiles, 2 per rank, 4 ranks.
  EXPECT_EQ(SwizzleTileM(0, 8, 2, /*rank=*/2, 4, TileOrder::kRowMajor), 0);
  EXPECT_EQ(SwizzleTileM(0, 8, 2, /*rank=*/2, 4, TileOrder::kOwnerFirst), 4);
  EXPECT_EQ(SwizzleTileM(0, 8, 2, /*rank=*/2, 4, TileOrder::kNextRankFirst),
            6);
  EXPECT_EQ(SwizzleTileM(7, 8, 2, /*rank=*/2, 4, TileOrder::kOwnerFirst), 3);
  // Degenerate: fewer m-tiles than ranks -> identity.
  EXPECT_EQ(SwizzleTileM(1, 2, 0, /*rank=*/3, 4, TileOrder::kOwnerFirst), 1);
  // Swizzle is a bijection over the tile range.
  std::map<int64_t, int> seen;
  for (int64_t t = 0; t < 8; ++t) {
    seen[SwizzleTileM(t, 8, 2, 1, 4, TileOrder::kNextRankFirst)]++;
  }
  EXPECT_EQ(seen.size(), 8u);
}

// ---------------------------------------------------------------------- //
// Autotuner
// ---------------------------------------------------------------------- //

TEST(AutotunerTest, PicksCostArgminOnToySpace) {
  TuningSpace space;
  space.CommTileM({16, 32, 64}).CommSms({2, 4});
  TuneCandidate base;
  base.comm = CommResource::kSmPull;  // keep the comm_sms axis live
  // Toy cost landscape with a unique interior optimum at (32, 4).
  auto eval = [](const TuneCandidate& c) -> sim::TimeNs {
    const int64_t tile_penalty = (c.comm_tile_m - 32) * (c.comm_tile_m - 32);
    const int64_t sm_penalty = (c.comm_sms - 4) * (c.comm_sms - 4) * 100;
    return 1000 + tile_penalty + sm_penalty;
  };
  const TuneResult result = Autotuner().Search(space, base, eval);
  EXPECT_EQ(result.best.comm_tile_m, 32);
  EXPECT_EQ(result.best.comm_sms, 4);
  EXPECT_EQ(result.best_cost, 1000);
  // 6 enumerated candidates plus the out-of-space base config, which the
  // tuner always evaluates so a search can never return worse than its seed.
  EXPECT_EQ(result.evaluated.size(), 7u);
}

TEST(AutotunerTest, LowerBoundPrunesWithoutChangingArgmin) {
  TuningSpace space;
  space.CommTileM({16, 32, 64, 128});
  TuneCandidate base;
  int evals = 0;
  auto eval = [&evals](const TuneCandidate& c) -> sim::TimeNs {
    ++evals;
    return c.comm_tile_m;  // 16 is the optimum
  };
  // Exact bound: everything after the first candidate (ascending axis)
  // gets pruned.
  auto bound = [](const TuneCandidate& c) -> sim::TimeNs {
    return c.comm_tile_m;
  };
  const TuneResult result = Autotuner().Search(space, base, eval, bound);
  EXPECT_EQ(result.best.comm_tile_m, 16);
  EXPECT_EQ(result.best_cost, 16);
  EXPECT_EQ(evals, 1);
  EXPECT_EQ(result.pruned, 3);
}

TEST(AutotunerTest, SkipsInfeasibleCandidates) {
  TuningSpace space;
  space.CommTileM({16, 32, 64});
  TuneCandidate base;
  base.comm_tile_m = 64;  // inside the space: no extra seed evaluation
  auto eval = [](const TuneCandidate& c) -> sim::TimeNs {
    if (c.comm_tile_m != 32) return Autotuner::kInfeasible;
    return 7;
  };
  const TuneResult result = Autotuner().Search(space, base, eval);
  EXPECT_EQ(result.best.comm_tile_m, 32);
  EXPECT_EQ(result.best_cost, 7);
  EXPECT_EQ(result.infeasible, 2);
}

TEST(AutotunerTest, DmaCollapsesCommSmAxis) {
  TuningSpace space;
  space.CommSms({2, 4, 8}).Resources({CommResource::kSmPull,
                                      CommResource::kDma});
  TuneCandidate base;
  const std::vector<TuneCandidate> all = space.Enumerate(base);
  int dma = 0, sm = 0;
  for (const TuneCandidate& c : all) {
    (c.comm == CommResource::kDma ? dma : sm)++;
  }
  EXPECT_EQ(sm, 3);   // pull x 3 comm_sms
  EXPECT_EQ(dma, 1);  // comm_sms axis collapsed
}

// The analytic bounds must never exceed the simulated time, or pruning
// could discard the argmin (this caught an uncapped comm-SM claim once).
TEST(AutotunerTest, LowerBoundsAreSound) {
  const sim::MachineSpec spec = sim::MachineSpec::Test(4, 16);
  const MlpPartShape shape{512, 128, 2048};
  TuneCandidate base;
  base.gemm = compute::GemmTiling{32, 32, 16};
  TuningSpace space;
  space.CommTileM({16, 32, 64, 128})
      .CommSms({2, 4, 8, 15})
      .Resources({CommResource::kSmPull, CommResource::kSmPush,
                  CommResource::kDma});
  for (const TuneCandidate& c : space.Enumerate(base)) {
    const sim::TimeNs ag = SimulateAgGemm(spec, shape, c);
    if (ag != Autotuner::kInfeasible) {
      EXPECT_LE(AgGemmLowerBound(spec, shape, c), ag) << c.Describe();
    }
    const sim::TimeNs rs = SimulateGemmRs(spec, shape, c);
    if (rs != Autotuner::kInfeasible) {
      EXPECT_LE(GemmRsLowerBound(spec, shape, c), rs) << c.Describe();
    }
  }
}

// End-to-end on the real simulator, small shape: the tuner's argmin must
// match a brute-force sweep of the same space.
TEST(AutotunerTest, MatchesBruteForceOnSimulatedAgGemm) {
  const sim::MachineSpec spec = sim::MachineSpec::Test(4, 16);
  const MlpPartShape shape{256, 64, 64};
  TuneCandidate base;
  base.gemm = compute::GemmTiling{32, 32, 16};
  TuningSpace space;
  space.CommTileM({16, 32, 64})
      .CommSms({2, 4})
      .Resources({CommResource::kSmPull, CommResource::kDma});
  const TuneResult tuned = TuneAgGemm(spec, shape, space, base);
  sim::TimeNs brute_best = Autotuner::kInfeasible;
  for (const TuneCandidate& c : space.Enumerate(base)) {
    const sim::TimeNs t = SimulateAgGemm(spec, shape, c);
    if (t != Autotuner::kInfeasible) brute_best = std::min(brute_best, t);
  }
  EXPECT_EQ(tuned.best_cost, brute_best);
  EXPECT_EQ(SimulateAgGemm(spec, shape, tuned.best), tuned.best_cost);
}

}  // namespace
}  // namespace tilelink::tl
