// Tests for common utilities, tensor views, and the trace recorder.
#include <gtest/gtest.h>

#include "common/math_utils.h"
#include "common/rng.h"
#include "common/string_utils.h"
#include "runtime/world.h"
#include "sim/trace.h"
#include "tensor/tensor_ops.h"

namespace tilelink {
namespace {

TEST(MathUtils, CeilDivAndRoundUp) {
  EXPECT_EQ(CeilDiv(10, 3), 4);
  EXPECT_EQ(CeilDiv(9, 3), 3);
  EXPECT_EQ(CeilDiv(int64_t{1}, int64_t{128}), 1);
  EXPECT_EQ(RoundUp(10, 4), 12);
  EXPECT_EQ(RoundUp(8, 4), 8);
  EXPECT_EQ(Pow2RoundUp(100), 128);
  EXPECT_EQ(Pow2RoundUp(128), 128);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, UniformIntWithinBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, FloatInUnitInterval) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const float f = rng.NextFloat();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(3);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(StringUtils, Formatting) {
  EXPECT_EQ(StrFormat("x=%d y=%.1f", 3, 2.5), "x=3 y=2.5");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(HumanTimeNs(500), "500 ns");
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_NE(HumanTimeNs(1500000).find("ms"), std::string::npos);
  EXPECT_NE(HumanBytes(64ull << 20).find("MiB"), std::string::npos);
}

TEST(TensorViews, SliceSelectFlattenRoundTrip) {
  rt::World world(sim::MachineSpec::Test(1), rt::ExecMode::kFunctional);
  Tensor t = Tensor::Alloc(world.device(0), "t", {4, 6, 8}, DType::kBF16);
  FillIota(t);
  // Select middle dim then slice.
  Tensor sel = t.Select(1, 2);  // [4, 8]
  EXPECT_EQ(sel.ndim(), 2);
  EXPECT_EQ(sel.at({1, 3}), t.at({1, 2, 3}));
  Tensor sl = t.Slice(0, 1, 2);  // [2, 6, 8]
  EXPECT_EQ(sl.at({0, 0, 0}), t.at({1, 0, 0}));
  EXPECT_TRUE(t.contiguous());
  EXPECT_FALSE(sel.contiguous() && sel.numel() != t.numel());
  Tensor flat = t.Flatten();
  EXPECT_EQ(flat.ndim(), 1);
  EXPECT_EQ(flat.numel(), 4 * 6 * 8);
}

TEST(TensorViews, BufferRangeCoversView) {
  rt::World world(sim::MachineSpec::Test(1), rt::ExecMode::kFunctional);
  Tensor t = Tensor::Alloc(world.device(0), "t", {10, 10}, DType::kBF16);
  Tensor view = t.Slice(0, 3, 4).Slice(1, 2, 5);
  int64_t lo = 0, hi = 0;
  view.BufferRange(&lo, &hi);
  EXPECT_EQ(lo, view.OffsetOf({0, 0}));
  EXPECT_EQ(hi, view.OffsetOf({3, 4}) + 1);
}

TEST(TensorViews, LogicalBytesUseDtype) {
  rt::World world(sim::MachineSpec::Test(1), rt::ExecMode::kFunctional);
  Tensor bf16 = Tensor::Alloc(world.device(0), "a", {8, 8}, DType::kBF16);
  Tensor fp32 = Tensor::Alloc(world.device(0), "b", {8, 8}, DType::kFP32);
  EXPECT_EQ(bf16.logical_bytes(), 128u);
  EXPECT_EQ(fp32.logical_bytes(), 256u);
}

TEST(TensorOps, SumAndMaxAbsDiff) {
  rt::World world(sim::MachineSpec::Test(1), rt::ExecMode::kFunctional);
  Tensor a = Tensor::Alloc(world.device(0), "a", {3, 3}, DType::kFP32);
  Tensor b = Tensor::Alloc(world.device(0), "b", {3, 3}, DType::kFP32);
  FillConstant(a, 2.0f);
  FillConstant(b, 2.0f);
  b.at({1, 1}) = 5.0f;
  EXPECT_DOUBLE_EQ(Sum(a), 18.0);
  EXPECT_FLOAT_EQ(MaxAbsDiff(a, b), 3.0f);
  EXPECT_FALSE(AllClose(a, b));
  b.at({1, 1}) = 2.0f;
  EXPECT_TRUE(AllClose(a, b));
}

TEST(Trace, RecordsAndSerializesSpans) {
  sim::TraceRecorder trace;
  trace.AddSpan(0, 1, "gemm", 1000, 5000, "compute");
  trace.AddSpan(1, 2, "pull", 0, 2200, "comm");
  EXPECT_EQ(trace.size(), 2u);
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("\"name\":\"gemm\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
}

}  // namespace
}  // namespace tilelink
