// Tests for the model zoo and the end-to-end estimator: configs sane, layer
// timings positive and cached, speedups in a plausible band, MoE layers use
// the MoE path, the two-node setup dilutes the speedup.
#include <gtest/gtest.h>

#include "models/model_zoo.h"
#include "models/transformer.h"

namespace tilelink::models {
namespace {

TEST(ModelZoo, HasTheEightFigure11Models) {
  const auto zoo = Figure11Models();
  ASSERT_EQ(zoo.size(), 8u);
  int moe = 0;
  for (const ModelConfig& m : zoo) {
    EXPECT_GT(m.hidden, 0);
    EXPECT_GT(m.layers, 0);
    EXPECT_GT(m.heads, 0);
    EXPECT_GT(m.intermediate, 0);
    if (m.is_moe) {
      ++moe;
      EXPECT_GT(m.num_experts, 0);
      EXPECT_GT(m.topk, 0);
    }
  }
  EXPECT_EQ(moe, 3);  // Mixtral x2 + Qwen
}

TEST(ModelZoo, LookupByNameWorksAndThrows) {
  EXPECT_EQ(GetModel("LLaMA2-70B").hidden, 8192);
  EXPECT_EQ(GetModel("Qwen1.5-2.7B").shared_expert_intermediate, 5632);
  EXPECT_THROW(GetModel("GPT-5"), Error);
}

TEST(E2eEstimator, DenseLayerSpeedupInPlausibleBand) {
  // Small seq keeps the simulation quick; TP=4.
  E2eEstimator est(/*tp=*/4, /*batch=*/1, /*seq=*/4096, /*two_node=*/false);
  const E2eResult r = est.Run(GetModel("LLaMA2-7B"));
  EXPECT_GT(r.torch_layer, 0);
  EXPECT_GT(r.tilelink_layer, 0);
  EXPECT_GT(r.speedup, 1.0);  // overlap must help dense layers
  EXPECT_LT(r.speedup, 3.0);  // and cannot exceed a sane bound
  EXPECT_EQ(r.torch_total, r.torch_layer * 32);
}

TEST(E2eEstimator, CachingMakesSecondModelCheap) {
  E2eEstimator est(4, 1, 4096, false);
  const E2eResult a = est.Run(GetModel("GPT3-6.7B"));
  const E2eResult b = est.Run(GetModel("GPT3-6.7B"));
  EXPECT_EQ(a.torch_layer, b.torch_layer);
  EXPECT_EQ(a.tilelink_layer, b.tilelink_layer);
}

TEST(E2eEstimator, TwoNodeDilutesSpeedup) {
  E2eEstimator one(4, 1, 4096, false);
  E2eEstimator two(4, 1, 4096, true);
  const double s1 = one.Run(GetModel("LLaMA2-7B")).speedup;
  const double s2 = two.Run(GetModel("LLaMA2-7B")).speedup;
  EXPECT_GT(s1, s2);
  EXPECT_GT(s2, 1.0);
}

// TP=16 spans two nodes: the row-parallel projections run the fused
// GEMM + hierarchical ReduceScatter kernel over the NIC fabric, and must
// beat the 16-rank non-overlapped baseline (whose flat ring RS drowns in
// the two NIC hops).
TEST(E2eEstimator, TpSpanningNodesUsesFusedHierRs) {
  E2eEstimator est(/*tp=*/16, /*batch=*/1, /*seq=*/4096, /*two_node=*/false);
  const E2eResult r = est.Run(GetModel("LLaMA2-7B"));
  EXPECT_GT(r.torch_layer, 0);
  EXPECT_GT(r.tilelink_layer, 0);
  EXPECT_GT(r.speedup, 1.0);
  EXPECT_LT(r.speedup, 6.0);  // NIC-bound baseline inflates the win
}

TEST(E2eEstimator, LayerBreakdownSumsToTotal) {
  E2eEstimator est(4, 1, 4096, false);
  const ModelConfig m = GetModel("LLaMA2-7B");
  const LayerBreakdown lb = est.LayerTime(m, Method::kTileLink);
  EXPECT_GT(lb.attn_block, 0);
  EXPECT_GT(lb.ffn_block, 0);
  EXPECT_EQ(lb.total(), lb.attn_block + lb.ffn_block);
}

}  // namespace
}  // namespace tilelink::models
