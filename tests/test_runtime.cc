// Tests for the runtime layer: streams order ops, kernel launches respect SM
// capacity (wave quantization), signals obey visibility latency, the
// consistency checker flags in-flight reads, barriers rendezvous.
#include <gtest/gtest.h>

#include "runtime/stream.h"
#include "runtime/world.h"
#include "tensor/tensor.h"

namespace tilelink::rt {
namespace {

using sim::Coro;
using sim::Delay;
using sim::TimeNs;

TEST(Runtime, StreamExecutesOpsInOrder) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  Stream& stream = *world.rank_ctx(0).stream;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    stream.Enqueue([&order, i]() -> Coro {
      co_await Delay{100 - i * 20};  // later ops are shorter
      order.push_back(i);
    });
  }
  world.sim().Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Runtime, KernelBlocksQuantizeIntoWaves) {
  // 4 SMs, 8 blocks of 100ns each -> 2 waves -> 200ns of block time.
  sim::MachineSpec spec = sim::MachineSpec::Test(1, /*sms=*/4);
  World world(spec, ExecMode::kFunctional);
  RankCtx& ctx = world.rank_ctx(0);
  auto state = ctx.stream->LaunchKernel(
      8,
      [](BlockCtx) -> Coro { co_await Delay{100}; },
      "wave_test");
  TimeNs done = 0;
  const TimeNs t0 = world.sim().Now();
  world.RunSpmd([&](RankCtx& c) -> Coro {
    co_await state->Wait();
    done = c.sim()->Now();
  });
  EXPECT_EQ(done - t0 - spec.kernel_launch_latency, 200);
}

TEST(Runtime, StreamEventOrdersAcrossStreams) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  RankCtx& ctx = world.rank_ctx(0);
  std::vector<int> order;
  ctx.stream->Enqueue([&order]() -> Coro {
    co_await Delay{500};
    order.push_back(1);
  });
  auto ev = ctx.stream->RecordEvent();
  ctx.comm_stream->WaitEvent(ev);
  ctx.comm_stream->Enqueue([&order]() -> Coro {
    order.push_back(2);
    co_return;
  });
  world.sim().Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Runtime, RemoteSignalHasVisibilityLatency) {
  sim::MachineSpec spec = sim::MachineSpec::Test(2);
  World world(spec, ExecMode::kFunctional);
  SignalSet* sig = world.device(1).AllocSignals("s", 4);
  TimeNs woke = -1;
  world.sim().Spawn([](SignalSet* s, TimeNs* w,
                       sim::Simulator* sim) -> Coro {
    co_await s->Wait(2, 1);
    *w = sim->Now();
  }(sig, &woke, &world.sim()));
  // Rank 0 sets a flag on rank 1's device at t=0.
  sig->SetFrom(/*from_rank=*/0, /*idx=*/2, 1);
  world.sim().Run();
  EXPECT_EQ(woke, spec.signal_visibility_latency);
}

TEST(Runtime, LocalSignalIsFaster) {
  sim::MachineSpec spec = sim::MachineSpec::Test(2);
  World world(spec, ExecMode::kFunctional);
  SignalSet* sig = world.device(1).AllocSignals("s", 1);
  TimeNs woke = -1;
  world.sim().Spawn([](SignalSet* s, TimeNs* w,
                       sim::Simulator* sim) -> Coro {
    co_await s->Wait(0, 1);
    *w = sim->Now();
  }(sig, &woke, &world.sim()));
  sig->SetFrom(/*from_rank=*/1, /*idx=*/0, 1);
  world.sim().Run();
  EXPECT_EQ(woke, spec.local_signal_latency);
}

TEST(Runtime, ConsistencyCheckerFlagsInFlightRead) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  world.checker().set_enabled(true);
  Tensor t = Tensor::Alloc(world.device(0), "buf", {64}, DType::kFP32);
  world.checker().RecordWrite(t.buffer(), 0, 64, /*start=*/100, /*end=*/200,
                              "writer");
  world.checker().CheckRead(t.buffer(), 10, 20, /*t=*/150, "reader");
  ASSERT_EQ(world.checker().violations().size(), 1u);
  EXPECT_EQ(world.checker().violations()[0].writer, "writer");
}

TEST(Runtime, ConsistencyCheckerAcceptsOrderedRead) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  world.checker().set_enabled(true);
  Tensor t = Tensor::Alloc(world.device(0), "buf", {64}, DType::kFP32);
  world.checker().RecordWrite(t.buffer(), 0, 64, 100, 200, "writer");
  world.checker().CheckRead(t.buffer(), 10, 20, 200, "reader");  // at end: ok
  world.checker().CheckRead(t.buffer(), 10, 20, 250, "reader");
  EXPECT_TRUE(world.checker().violations().empty());
}

TEST(Runtime, ConsistencyCheckerIgnoresDisjointRanges) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  world.checker().set_enabled(true);
  Tensor t = Tensor::Alloc(world.device(0), "buf", {64}, DType::kFP32);
  world.checker().RecordWrite(t.buffer(), 0, 32, 100, 200, "writer");
  world.checker().CheckRead(t.buffer(), 32, 64, 150, "reader");
  EXPECT_TRUE(world.checker().violations().empty());
}

// Pinned boundary semantics: [start, end) is half-open — a read at exactly
// write_end is the correct acquire/release rendezvous, a read at exactly
// write_start races.
TEST(Runtime, ConsistencyCheckerBoundarySemantics) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  world.checker().set_enabled(true);
  Tensor t = Tensor::Alloc(world.device(0), "buf", {64}, DType::kFP32);
  world.checker().RecordWrite(t.buffer(), 0, 64, 100, 200, "writer");
  world.checker().CheckRead(t.buffer(), 10, 20, 200, "reader");  // at end
  EXPECT_TRUE(world.checker().violations().empty());
  world.checker().CheckRead(t.buffer(), 10, 20, 100, "reader");  // at start
  EXPECT_EQ(world.checker().violations().size(), 1u);
}

TEST(Runtime, ConsistencyCheckerIgnoresEmptyRanges) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  world.checker().set_enabled(true);
  Tensor t = Tensor::Alloc(world.device(0), "buf", {64}, DType::kFP32);
  world.checker().RecordWrite(t.buffer(), 0, 64, 100, 200, "writer");
  world.checker().CheckRead(t.buffer(), 5, 5, 150, "reader");  // hi == lo
  world.checker().CheckRead(t.buffer(), 9, 5, 150, "reader");  // hi < lo
  EXPECT_TRUE(world.checker().violations().empty());
  // An empty write never matches later reads either: this full-range read
  // races only the original [0, 64) write, not the empty "writer2" one.
  world.checker().RecordWrite(t.buffer(), 7, 7, 100, 200, "writer2");
  world.checker().CheckRead(t.buffer(), 0, 64, 150, "reader2");
  ASSERT_EQ(world.checker().violations().size(), 1u);
  EXPECT_EQ(world.checker().violations()[0].writer, "writer");
}

// A read-modify-write actor probes its input at its wake instant and
// records its mutation window starting strictly after it ([wake + 1, end)):
// the program-ordered self-access never matches, other actors still do.
TEST(Runtime, ConsistencyCheckerRmwConventionAvoidsSelfRace) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  world.checker().set_enabled(true);
  Tensor t = Tensor::Alloc(world.device(0), "buf", {64}, DType::kFP32);
  world.checker().CheckRead(t.buffer(), 0, 64, 100, "reduce.r0");
  world.checker().RecordWrite(t.buffer(), 0, 64, 101, 180, "reduce.r0");
  EXPECT_TRUE(world.checker().violations().empty());
  // Any actor reading inside the mutation window is a race — including a
  // same-named one (names are diagnostics, not actor identity).
  world.checker().CheckRead(t.buffer(), 0, 64, 120, "reduce.r0");
  EXPECT_EQ(world.checker().violations().size(), 1u);
}

TEST(Runtime, ConsistencyCheckerRetiresCompletedIntervals) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  ConsistencyChecker& chk = world.checker();
  chk.set_enabled(true);
  chk.set_auto_retire_period(0);  // manual control
  Tensor t = Tensor::Alloc(world.device(0), "buf", {64}, DType::kFP32);
  chk.RecordWrite(t.buffer(), 0, 8, 100, 200, "w");
  chk.CheckRead(t.buffer(), 0, 8, 200, "r");
  EXPECT_EQ(chk.live_writes(), 1u);
  EXPECT_EQ(chk.live_reads(), 1u);
  chk.RetireUpTo(150);  // write still in flight: nothing retires
  EXPECT_EQ(chk.live_writes(), 1u);
  chk.RetireUpTo(250);
  EXPECT_EQ(chk.live_writes(), 0u);
  EXPECT_EQ(chk.live_reads(), 0u);
  EXPECT_EQ(chk.retired_intervals(), 2u);
  EXPECT_TRUE(chk.violations().empty());
}

// Regression: the live set stays bounded under sustained registration (the
// functional 16-GPU collectives register one interval per chunk for the
// whole run — the checker must not accumulate them all).
TEST(Runtime, ConsistencyCheckerAutoRetireBoundsLiveSet) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  ConsistencyChecker& chk = world.checker();
  chk.set_enabled(true);
  chk.set_auto_retire_period(256);
  Tensor t = Tensor::Alloc(world.device(0), "buf", {64}, DType::kFP32);
  const int kIntervals = 10000;
  for (int i = 0; i < kIntervals; ++i) {
    const sim::TimeNs start = i * 10;
    chk.RecordWrite(t.buffer(), i % 64, i % 64 + 1, start, start + 5, "w");
    chk.CheckRead(t.buffer(), i % 64, i % 64 + 1, start + 5, "r");
  }
  EXPECT_TRUE(chk.violations().empty());
  EXPECT_LE(chk.live_writes() + chk.live_reads(), 2u * 256u + 2u);
  EXPECT_GT(chk.retired_intervals(), 0u);
}

// OpenWrite pins the retirement watermark: a read probed while a write is
// in flight survives arbitrarily many unrelated retirement rounds and is
// still matched by the order-independent audit when the write commits.
TEST(Runtime, ConsistencyCheckerOpenWriteGuardsInFlightAudit) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  ConsistencyChecker& chk = world.checker();
  chk.set_enabled(true);
  chk.set_auto_retire_period(8);
  Tensor t = Tensor::Alloc(world.device(0), "buf", {64}, DType::kFP32);
  Tensor u = Tensor::Alloc(world.device(0), "other", {64}, DType::kFP32);
  const uint64_t wt = chk.OpenWrite(100);
  chk.CheckRead(t.buffer(), 0, 8, 150, "racer");
  // Unrelated traffic far in the future trips auto-retire many times.
  for (int i = 0; i < 64; ++i) {
    const sim::TimeNs start = 10000 + i * 10;
    chk.RecordWrite(u.buffer(), 0, 1, start, start + 1, "noise");
  }
  EXPECT_GE(chk.live_reads(), 1u);  // the racer probe must survive
  chk.RecordWrite(t.buffer(), 0, 8, 100, 200, "writer");
  chk.CloseWrite(wt);
  ASSERT_EQ(chk.violations().size(), 1u);
  EXPECT_EQ(chk.violations()[0].reader, "racer");
  // Without the open-write guard the probe would have been retired:
  chk.Clear();
  chk.set_enabled(true);
  chk.CheckRead(t.buffer(), 0, 8, 150, "racer");
  chk.RetireUpTo(10000);
  chk.RecordWrite(t.buffer(), 0, 8, 100, 200, "writer");
  EXPECT_TRUE(chk.violations().empty());
}

// The link roles' retry path: a chunk attempt that fails (drop or ack
// timeout) closes its write bracket WITHOUT recording a write. The close
// must unpin the retirement watermark — an aborted attempt that leaked its
// token would pin retirement forever — and must leave no phantom write for
// the audit, so a reader probed during the aborted attempt reports nothing.
TEST(Runtime, ConsistencyCheckerAbortedWriteUnpinsRetirement) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  ConsistencyChecker& chk = world.checker();
  chk.set_enabled(true);
  Tensor t = Tensor::Alloc(world.device(0), "buf", {64}, DType::kFP32);
  const uint64_t wt = chk.OpenWrite(100);  // attempt departs...
  chk.CheckRead(t.buffer(), 0, 8, 150, "reader");
  chk.CloseWrite(wt);  // ...and is aborted: nothing was delivered
  EXPECT_EQ(chk.violations().size(), 0u);
  // The watermark is unpinned: retirement passes the aborted bracket and
  // reclaims the probe.
  chk.RetireUpTo(10000);
  EXPECT_EQ(chk.live_reads(), 0u);
  EXPECT_EQ(chk.live_writes(), 0u);
  // The successful retry is a fresh bracket and audits normally.
  const uint64_t wt2 = chk.OpenWrite(200);
  chk.CheckRead(t.buffer(), 0, 8, 20000, "retry_racer");
  chk.RecordWrite(t.buffer(), 0, 8, 19000, 21000, "retry_writer");
  chk.CloseWrite(wt2);
  ASSERT_EQ(chk.violations().size(), 1u);
  EXPECT_EQ(chk.violations()[0].reader, "retry_racer");
}

// Two plain writes overlapping in both element range and time race; a
// write starting exactly at another's end is the correct pipeline handoff;
// disjoint ranges never report.
TEST(Runtime, ConsistencyCheckerWriteWriteOverlapReported) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  ConsistencyChecker& chk = world.checker();
  chk.set_enabled(true);
  Tensor t = Tensor::Alloc(world.device(0), "buf", {64}, DType::kFP32);
  chk.RecordWrite(t.buffer(), 0, 32, 100, 200, "writer_a");
  chk.RecordWrite(t.buffer(), 32, 64, 150, 250, "other_range");  // disjoint
  chk.RecordWrite(t.buffer(), 0, 16, 200, 300, "back_to_back");  // handoff
  EXPECT_TRUE(chk.violations().empty());
  chk.RecordWrite(t.buffer(), 16, 48, 150, 250, "overlapper");
  ASSERT_EQ(chk.violations().size(), 2u);  // vs writer_a and other_range
  EXPECT_EQ(chk.violations()[0].kind,
            ConsistencyChecker::Violation::Kind::kWriteWrite);
  EXPECT_EQ(chk.violations()[0].reader, "overlapper");
  EXPECT_EQ(chk.violations()[0].writer, "writer_a");
}

// Instantaneous writes (start == end) model stores committing at one
// point: two of them never race (no duration to overlap), but a point
// store races a window exactly like a read does — inside or at the
// window's start races, at its end is the correct handoff.
TEST(Runtime, ConsistencyCheckerInstantWriteSemantics) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  ConsistencyChecker& chk = world.checker();
  chk.set_enabled(true);
  Tensor t = Tensor::Alloc(world.device(0), "buf", {64}, DType::kFP32);
  chk.RecordWrite(t.buffer(), 0, 32, 100, 100, "store_a");
  chk.RecordWrite(t.buffer(), 0, 32, 100, 100, "store_b");  // same instant
  chk.RecordWrite(t.buffer(), 0, 32, 200, 300, "transfer");
  chk.RecordWrite(t.buffer(), 0, 32, 300, 300, "store_at_end");  // handoff
  EXPECT_TRUE(chk.violations().empty());
  // A point store strictly inside the transfer's window is clobbered by
  // the landing copy (the mis-indexed-slot bug class), order-independent.
  chk.RecordWrite(t.buffer(), 0, 32, 250, 250, "store_inside");
  ASSERT_EQ(chk.violations().size(), 1u);
  EXPECT_EQ(chk.violations()[0].kind,
            ConsistencyChecker::Violation::Kind::kWriteWrite);
  chk.RecordWrite(t.buffer(), 0, 32, 400, 400, "store_first");
  chk.RecordWrite(t.buffer(), 0, 32, 350, 450, "transfer_late");
  EXPECT_EQ(chk.violations().size(), 2u);  // caught when the window lands
}

// Commutative atomic accumulations (reduction epilogues) may overlap each
// other — concurrent per-peer reducers folding into one accumulator are
// legal — but an atomic window overlapping a plain write still races.
TEST(Runtime, ConsistencyCheckerAtomicAccumulationsMayOverlap) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  ConsistencyChecker& chk = world.checker();
  chk.set_enabled(true);
  Tensor t = Tensor::Alloc(world.device(0), "buf", {64}, DType::kFP32);
  chk.RecordWrite(t.buffer(), 0, 32, 100, 200, "reduce.s0",
                  /*atomic=*/true);
  chk.RecordWrite(t.buffer(), 0, 32, 150, 250, "reduce.s1",
                  /*atomic=*/true);
  EXPECT_TRUE(chk.violations().empty());
  chk.RecordWrite(t.buffer(), 0, 32, 160, 260, "chunk_copy");
  ASSERT_EQ(chk.violations().size(), 2u);
  EXPECT_EQ(chk.violations()[0].kind,
            ConsistencyChecker::Violation::Kind::kWriteWrite);
}

// Regression for the motivating bug class: a mis-indexed rail staging slot
// receives two concurrent NIC chunks. Both senders bracket their delayed
// writes with OpenWrite (exactly like the link-role TransferChunk), so the
// audit survives auto-retirement churn and reports the overlap when the
// second chunk lands.
TEST(Runtime, ConsistencyCheckerCatchesMisindexedRailStagingSlot) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  ConsistencyChecker& chk = world.checker();
  chk.set_enabled(true);
  chk.set_auto_retire_period(8);
  Tensor staging = Tensor::Alloc(world.device(0), "rail_acc", {256},
                                 DType::kFP32);
  Tensor noise = Tensor::Alloc(world.device(0), "noise", {8}, DType::kFP32);
  // Sender r0's chunk is in flight over [100, 400)...
  const uint64_t wt0 = chk.OpenWrite(100);
  // ...while sender r1, mis-indexed into the same slot, flies [200, 500).
  const uint64_t wt1 = chk.OpenWrite(200);
  // Unrelated far-future traffic trips auto-retire repeatedly.
  for (int i = 0; i < 64; ++i) {
    const sim::TimeNs start = 10000 + i * 10;
    chk.RecordWrite(noise.buffer(), 0, 1, start, start + 1, "noise");
  }
  chk.RecordWrite(staging.buffer(), 0, 128, 100, 400, "hier_rs.rail.r0->r2");
  chk.CloseWrite(wt0);
  chk.RecordWrite(staging.buffer(), 0, 128, 200, 500, "hier_rs.rail.r1->r2");
  chk.CloseWrite(wt1);
  ASSERT_EQ(chk.violations().size(), 1u);
  EXPECT_EQ(chk.violations()[0].kind,
            ConsistencyChecker::Violation::Kind::kWriteWrite);
  EXPECT_EQ(chk.violations()[0].reader, "hier_rs.rail.r1->r2");
  EXPECT_EQ(chk.violations()[0].writer, "hier_rs.rail.r0->r2");
  // Correctly indexed per-source slots (disjoint ranges) stay silent.
  chk.RecordWrite(staging.buffer(), 128, 256, 200, 500,
                  "hier_rs.rail.r1->r2");
  EXPECT_EQ(chk.violations().size(), 1u);
}

TEST(Runtime, BarrierRendezvousAllRanks) {
  World world(sim::MachineSpec::Test(4), ExecMode::kFunctional);
  std::vector<TimeNs> after(4, -1);
  world.RunSpmd([&](RankCtx& ctx) -> Coro {
    co_await Delay{100 * (ctx.rank + 1)};  // staggered arrivals
    co_await ctx.world->barrier().Arrive();
    after[static_cast<size_t>(ctx.rank)] = ctx.sim()->Now();
  });
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(after[static_cast<size_t>(r)], 400) << "rank " << r;
  }
}

TEST(Runtime, BarrierIsReusable) {
  World world(sim::MachineSpec::Test(2), ExecMode::kFunctional);
  int phase_sum = 0;
  world.RunSpmd([&](RankCtx& ctx) -> Coro {
    for (int i = 0; i < 3; ++i) {
      co_await ctx.world->barrier().Arrive();
      phase_sum++;
    }
  });
  EXPECT_EQ(phase_sum, 6);
}

TEST(Runtime, TimingOnlyModeSkipsPayloads) {
  World world(sim::MachineSpec::Test(2), ExecMode::kTimingOnly);
  Tensor t = Tensor::Alloc(world.device(0), "big", {1024}, DType::kBF16);
  EXPECT_FALSE(t.materialized());
  EXPECT_THROW(t.buffer()->data(), Error);
  // Control allocations stay materialized.
  Tensor c = Tensor::AllocControl(world.device(0), "ctl", {16}, DType::kFP32);
  EXPECT_TRUE(c.materialized());
}

}  // namespace
}  // namespace tilelink::rt
