// Tests for the runtime layer: streams order ops, kernel launches respect SM
// capacity (wave quantization), signals obey visibility latency, the
// consistency checker flags in-flight reads, barriers rendezvous.
#include <gtest/gtest.h>

#include "runtime/stream.h"
#include "runtime/world.h"
#include "tensor/tensor.h"

namespace tilelink::rt {
namespace {

using sim::Coro;
using sim::Delay;
using sim::TimeNs;

TEST(Runtime, StreamExecutesOpsInOrder) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  Stream& stream = *world.rank_ctx(0).stream;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    stream.Enqueue([&order, i]() -> Coro {
      co_await Delay{100 - i * 20};  // later ops are shorter
      order.push_back(i);
    });
  }
  world.sim().Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Runtime, KernelBlocksQuantizeIntoWaves) {
  // 4 SMs, 8 blocks of 100ns each -> 2 waves -> 200ns of block time.
  sim::MachineSpec spec = sim::MachineSpec::Test(1, /*sms=*/4);
  World world(spec, ExecMode::kFunctional);
  RankCtx& ctx = world.rank_ctx(0);
  auto state = ctx.stream->LaunchKernel(
      8,
      [](BlockCtx) -> Coro { co_await Delay{100}; },
      "wave_test");
  TimeNs done = 0;
  const TimeNs t0 = world.sim().Now();
  world.RunSpmd([&](RankCtx& c) -> Coro {
    co_await state->Wait();
    done = c.sim()->Now();
  });
  EXPECT_EQ(done - t0 - spec.kernel_launch_latency, 200);
}

TEST(Runtime, StreamEventOrdersAcrossStreams) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  RankCtx& ctx = world.rank_ctx(0);
  std::vector<int> order;
  ctx.stream->Enqueue([&order]() -> Coro {
    co_await Delay{500};
    order.push_back(1);
  });
  auto ev = ctx.stream->RecordEvent();
  ctx.comm_stream->WaitEvent(ev);
  ctx.comm_stream->Enqueue([&order]() -> Coro {
    order.push_back(2);
    co_return;
  });
  world.sim().Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Runtime, RemoteSignalHasVisibilityLatency) {
  sim::MachineSpec spec = sim::MachineSpec::Test(2);
  World world(spec, ExecMode::kFunctional);
  SignalSet* sig = world.device(1).AllocSignals("s", 4);
  TimeNs woke = -1;
  world.sim().Spawn([](SignalSet* s, TimeNs* w,
                       sim::Simulator* sim) -> Coro {
    co_await s->Wait(2, 1);
    *w = sim->Now();
  }(sig, &woke, &world.sim()));
  // Rank 0 sets a flag on rank 1's device at t=0.
  sig->SetFrom(/*from_rank=*/0, /*idx=*/2, 1);
  world.sim().Run();
  EXPECT_EQ(woke, spec.signal_visibility_latency);
}

TEST(Runtime, LocalSignalIsFaster) {
  sim::MachineSpec spec = sim::MachineSpec::Test(2);
  World world(spec, ExecMode::kFunctional);
  SignalSet* sig = world.device(1).AllocSignals("s", 1);
  TimeNs woke = -1;
  world.sim().Spawn([](SignalSet* s, TimeNs* w,
                       sim::Simulator* sim) -> Coro {
    co_await s->Wait(0, 1);
    *w = sim->Now();
  }(sig, &woke, &world.sim()));
  sig->SetFrom(/*from_rank=*/1, /*idx=*/0, 1);
  world.sim().Run();
  EXPECT_EQ(woke, spec.local_signal_latency);
}

TEST(Runtime, ConsistencyCheckerFlagsInFlightRead) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  world.checker().set_enabled(true);
  Tensor t = Tensor::Alloc(world.device(0), "buf", {64}, DType::kFP32);
  world.checker().RecordWrite(t.buffer(), 0, 64, /*start=*/100, /*end=*/200,
                              "writer");
  world.checker().CheckRead(t.buffer(), 10, 20, /*t=*/150, "reader");
  ASSERT_EQ(world.checker().violations().size(), 1u);
  EXPECT_EQ(world.checker().violations()[0].writer, "writer");
}

TEST(Runtime, ConsistencyCheckerAcceptsOrderedRead) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  world.checker().set_enabled(true);
  Tensor t = Tensor::Alloc(world.device(0), "buf", {64}, DType::kFP32);
  world.checker().RecordWrite(t.buffer(), 0, 64, 100, 200, "writer");
  world.checker().CheckRead(t.buffer(), 10, 20, 200, "reader");  // at end: ok
  world.checker().CheckRead(t.buffer(), 10, 20, 250, "reader");
  EXPECT_TRUE(world.checker().violations().empty());
}

TEST(Runtime, ConsistencyCheckerIgnoresDisjointRanges) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  world.checker().set_enabled(true);
  Tensor t = Tensor::Alloc(world.device(0), "buf", {64}, DType::kFP32);
  world.checker().RecordWrite(t.buffer(), 0, 32, 100, 200, "writer");
  world.checker().CheckRead(t.buffer(), 32, 64, 150, "reader");
  EXPECT_TRUE(world.checker().violations().empty());
}

TEST(Runtime, BarrierRendezvousAllRanks) {
  World world(sim::MachineSpec::Test(4), ExecMode::kFunctional);
  std::vector<TimeNs> after(4, -1);
  world.RunSpmd([&](RankCtx& ctx) -> Coro {
    co_await Delay{100 * (ctx.rank + 1)};  // staggered arrivals
    co_await ctx.world->barrier().Arrive();
    after[static_cast<size_t>(ctx.rank)] = ctx.sim()->Now();
  });
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(after[static_cast<size_t>(r)], 400) << "rank " << r;
  }
}

TEST(Runtime, BarrierIsReusable) {
  World world(sim::MachineSpec::Test(2), ExecMode::kFunctional);
  int phase_sum = 0;
  world.RunSpmd([&](RankCtx& ctx) -> Coro {
    for (int i = 0; i < 3; ++i) {
      co_await ctx.world->barrier().Arrive();
      phase_sum++;
    }
  });
  EXPECT_EQ(phase_sum, 6);
}

TEST(Runtime, TimingOnlyModeSkipsPayloads) {
  World world(sim::MachineSpec::Test(2), ExecMode::kTimingOnly);
  Tensor t = Tensor::Alloc(world.device(0), "big", {1024}, DType::kBF16);
  EXPECT_FALSE(t.materialized());
  EXPECT_THROW(t.buffer()->data(), Error);
  // Control allocations stay materialized.
  Tensor c = Tensor::AllocControl(world.device(0), "ctl", {16}, DType::kFP32);
  EXPECT_TRUE(c.materialized());
}

}  // namespace
}  // namespace tilelink::rt
