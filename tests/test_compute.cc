// Compute kernels vs. naive references: GEMM, grouped GEMM, flash attention,
// activations, routing, topk reduce, gather/scatter.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compute/flash_attention.h"
#include "compute/gemm.h"
#include "compute/group_gemm.h"
#include "compute/memops.h"
#include "compute/moe_routing.h"
#include "runtime/world.h"
#include "tensor/tensor_ops.h"

namespace tilelink::compute {
namespace {

using rt::ExecMode;
using rt::RankCtx;
using rt::World;

sim::Coro SyncStream(RankCtx& ctx) { co_await ctx.stream->Synchronize(); }

struct GemmShape {
  int64_t m, n, k;
  int bm, bn, bk;
};

class GemmShapeTest : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmShapeTest, MatchesReference) {
  const GemmShape p = GetParam();
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  Rng rng(11);
  Tensor a = Tensor::Alloc(world.device(0), "a", {p.m, p.k}, DType::kBF16);
  Tensor b = Tensor::Alloc(world.device(0), "b", {p.k, p.n}, DType::kBF16);
  Tensor c = Tensor::Alloc(world.device(0), "c", {p.m, p.n}, DType::kBF16);
  Tensor want = Tensor::Alloc(world.device(0), "w", {p.m, p.n}, DType::kBF16);
  FillRandom(a, rng, 0.5f);
  FillRandom(b, rng, 0.5f);
  GemmRef(a, b, want);
  world.RunSpmd([&](RankCtx& ctx) -> sim::Coro {
    GemmOptions opt;
    opt.tiling = GemmTiling{p.bm, p.bn, p.bk};
    LaunchGemm(ctx, *ctx.stream, a, b, c, opt);
    co_await SyncStream(ctx);
  });
  EXPECT_LT(MaxAbsDiff(c, want), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapeTest,
    ::testing::Values(GemmShape{64, 64, 32, 32, 32, 16},
                      GemmShape{128, 96, 64, 64, 32, 32},
                      GemmShape{100, 60, 28, 32, 32, 16},  // ragged edges
                      GemmShape{256, 128, 128, 128, 64, 64},
                      GemmShape{32, 256, 16, 16, 128, 16}));

TEST(Gemm, AccumulateAddsToExisting) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  Rng rng(5);
  Tensor a = Tensor::Alloc(world.device(0), "a", {32, 16}, DType::kBF16);
  Tensor b = Tensor::Alloc(world.device(0), "b", {16, 32}, DType::kBF16);
  Tensor c = Tensor::Alloc(world.device(0), "c", {32, 32}, DType::kBF16);
  FillRandom(a, rng);
  FillRandom(b, rng);
  FillConstant(c, 2.0f);
  Tensor want = Tensor::Alloc(world.device(0), "w", {32, 32}, DType::kBF16);
  FillConstant(want, 2.0f);
  GemmRef(a, b, want, /*accumulate=*/true);
  world.RunSpmd([&](RankCtx& ctx) -> sim::Coro {
    GemmOptions opt;
    opt.tiling = GemmTiling{16, 16, 16};
    opt.accumulate = true;
    LaunchGemm(ctx, *ctx.stream, a, b, c, opt);
    co_await SyncStream(ctx);
  });
  EXPECT_LT(MaxAbsDiff(c, want), 1e-4f);
}

TEST(Gemm, WaveQuantizationSlowsSmallChunks) {
  // Decomposed chunks (8 launches of M/8) must be slower than one launch.
  const sim::MachineSpec spec = sim::MachineSpec::H800x8();
  const sim::CostModel cost(spec);
  const GemmTiling t{128, 256, 64};
  const sim::TimeNs whole =
      AnalyticGemmTime(cost, 8192, 1376, 4096, t, spec.sms_per_device);
  sim::TimeNs chunked = 0;
  for (int i = 0; i < 8; ++i) {
    chunked += AnalyticGemmTime(cost, 1024, 1376, 4096, t, spec.sms_per_device);
  }
  EXPECT_GT(chunked, whole);
}

TEST(MoeRouting, RandomRoutingIsValidPermutation) {
  Rng rng(1);
  MoeRouting r = RandomRouting(128, 8, 2, rng);
  r.CheckValid();
  // Distinct experts per token.
  for (int64_t t = 0; t < r.num_tokens; ++t) {
    EXPECT_NE(r.topk_ids[static_cast<size_t>(t * 2)],
              r.topk_ids[static_cast<size_t>(t * 2 + 1)]);
    const float w = r.topk_weights[static_cast<size_t>(t * 2)] +
                    r.topk_weights[static_cast<size_t>(t * 2 + 1)];
    EXPECT_NEAR(w, 1.0f, 1e-5f);
  }
}

TEST(MoeRouting, FromLogitsPicksTopk) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  Tensor logits =
      Tensor::Alloc(world.device(0), "l", {2, 4}, DType::kFP32);
  // token 0: expert 3 then 1; token 1: expert 0 then 2.
  logits.at({0, 0}) = 0.1f; logits.at({0, 1}) = 2.0f;
  logits.at({0, 2}) = -1.0f; logits.at({0, 3}) = 5.0f;
  logits.at({1, 0}) = 3.0f; logits.at({1, 1}) = 0.0f;
  logits.at({1, 2}) = 1.0f; logits.at({1, 3}) = -2.0f;
  MoeRouting r = RoutingFromLogits(logits, 2);
  r.CheckValid();
  EXPECT_EQ(r.topk_ids[0], 3);
  EXPECT_EQ(r.topk_ids[1], 1);
  EXPECT_EQ(r.topk_ids[2], 0);
  EXPECT_EQ(r.topk_ids[3], 2);
  EXPECT_GT(r.topk_weights[0], r.topk_weights[1]);
}

TEST(MoeRouting, GroupBlocksCoverAllSlotsOnce) {
  Rng rng(2);
  MoeRouting r = RandomRouting(200, 16, 4, rng);
  auto blocks = MakeGroupBlocks(r, 96, 32, 32);
  std::vector<int> covered(static_cast<size_t>(r.total_slots()), 0);
  for (const GroupBlock& gb : blocks) {
    if (gb.n_start != 0) continue;  // count each row once
    for (int i = 0; i < gb.rows; ++i) {
      covered[static_cast<size_t>(
          r.sorted_slots[static_cast<size_t>(gb.sorted_row_start + i)])]++;
    }
  }
  for (int64_t i = 0; i < r.total_slots(); ++i) {
    EXPECT_EQ(covered[static_cast<size_t>(i)], 1) << "slot " << i;
  }
}

TEST(GroupGemm, FusedMatchesReference) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  Rng rng(9);
  const int64_t m = 96, k = 32, n = 48;
  const int experts = 4, topk = 2;
  MoeRouting routing = RandomRouting(m, experts, topk, rng);
  Tensor tokens = Tensor::Alloc(world.device(0), "t", {m, k}, DType::kBF16);
  Tensor w =
      Tensor::Alloc(world.device(0), "w", {experts, k, n}, DType::kBF16);
  Tensor out =
      Tensor::Alloc(world.device(0), "o", {m * topk, n}, DType::kBF16);
  Tensor want =
      Tensor::Alloc(world.device(0), "want", {m * topk, n}, DType::kBF16);
  FillRandom(tokens, rng, 0.5f);
  FillRandom(w, rng, 0.5f);
  GroupGemmRef(tokens, w, want, routing);
  world.RunSpmd([&](RankCtx& ctx) -> sim::Coro {
    GroupGemmOptions opt;
    opt.tiling = GemmTiling{32, 32, 16};
    LaunchGroupGemmFused(ctx, *ctx.stream, tokens, w, out, routing, opt);
    co_await SyncStream(ctx);
  });
  EXPECT_LT(MaxAbsDiff(out, want), 1e-4f);
}

TEST(FlashAttention, MatchesEagerReference) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  Rng rng(13);
  const int64_t bh = 3, sq = 40, skv = 64, d = 16;
  Tensor q = Tensor::Alloc(world.device(0), "q", {bh, sq, d}, DType::kBF16);
  Tensor k = Tensor::Alloc(world.device(0), "k", {bh, skv, d}, DType::kBF16);
  Tensor v = Tensor::Alloc(world.device(0), "v", {bh, skv, d}, DType::kBF16);
  Tensor o = Tensor::Alloc(world.device(0), "o", {bh, sq, d}, DType::kBF16);
  Tensor want =
      Tensor::Alloc(world.device(0), "w", {bh, sq, d}, DType::kBF16);
  FillRandom(q, rng, 0.5f);
  FillRandom(k, rng, 0.5f);
  FillRandom(v, rng, 0.5f);
  AttentionRef(q, k, v, want);
  world.RunSpmd([&](RankCtx& ctx) -> sim::Coro {
    FlashOptions opt;
    opt.block_q = 16;
    opt.block_kv = 16;
    LaunchFlashAttention(ctx, *ctx.stream, q, k, v, o, opt);
    co_await SyncStream(ctx);
  });
  EXPECT_LT(MaxAbsDiff(o, want), 2e-4f);
}

TEST(FlashAttention, DeRatedThroughputOnlyChangesTiming) {
  // Timing-only, compute-dominated shape: a 4x de-rate must cost >2x.
  const int64_t bh = 8, sq = 1024, skv = 4096, d = 128;
  auto run = [&](double tf) {
    World world(sim::MachineSpec::Test(1, /*sms=*/16), ExecMode::kTimingOnly);
    Tensor q = Tensor::Alloc(world.device(0), "q", {bh, sq, d}, DType::kBF16);
    Tensor k = Tensor::Alloc(world.device(0), "k", {bh, skv, d}, DType::kBF16);
    Tensor v = Tensor::Alloc(world.device(0), "v", {bh, skv, d}, DType::kBF16);
    Tensor o = Tensor::Alloc(world.device(0), "o", {bh, sq, d}, DType::kBF16);
    return world.RunSpmd([&](RankCtx& ctx) -> sim::Coro {
      FlashOptions opt;
      opt.throughput_factor = tf;
      LaunchFlashAttention(ctx, *ctx.stream, q, k, v, o, opt);
      co_await SyncStream(ctx);
    });
  };
  const sim::TimeNs t1 = run(1.0);
  const sim::TimeNs t2 = run(0.25);
  EXPECT_GT(t2, t1 * 2);
}

TEST(Memops, ActivationMulMatchesReference) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  Rng rng(17);
  Tensor a = Tensor::Alloc(world.device(0), "a", {70, 30}, DType::kBF16);
  Tensor b = Tensor::Alloc(world.device(0), "b", {70, 30}, DType::kBF16);
  Tensor out = Tensor::Alloc(world.device(0), "o", {70, 30}, DType::kBF16);
  Tensor want = Tensor::Alloc(world.device(0), "w", {70, 30}, DType::kBF16);
  FillRandom(a, rng);
  FillRandom(b, rng);
  for (Activation act : {Activation::kSiluMul, Activation::kGeluMul}) {
    ActivationMulRef(a, b, want, act);
    world.RunSpmd([&](RankCtx& ctx) -> sim::Coro {
      LaunchActivationMul(ctx, *ctx.stream, a, b, out, act);
      co_await SyncStream(ctx);
    });
    EXPECT_LT(MaxAbsDiff(out, want), 1e-5f);
  }
}

TEST(Memops, GatherThenScatterRoundTrips) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  Rng rng(19);
  const int64_t m = 50, n = 10;
  Tensor src = Tensor::Alloc(world.device(0), "s", {m, n}, DType::kBF16);
  Tensor mid = Tensor::Alloc(world.device(0), "m", {m, n}, DType::kBF16);
  Tensor dst = Tensor::Alloc(world.device(0), "d", {m, n}, DType::kBF16);
  FillRandom(src, rng);
  std::vector<int> perm(m);
  for (int64_t i = 0; i < m; ++i) perm[static_cast<size_t>(i)] = static_cast<int>(i);
  rng.Shuffle(perm);
  world.RunSpmd([&](RankCtx& ctx) -> sim::Coro {
    LaunchGatherRows(ctx, *ctx.stream, src, mid, perm);
    LaunchScatterRows(ctx, *ctx.stream, mid, dst, perm);
    co_await SyncStream(ctx);
  });
  EXPECT_EQ(MaxAbsDiff(dst, src), 0.0f);
}

TEST(Memops, TopkReduceMatchesReference) {
  World world(sim::MachineSpec::Test(1), ExecMode::kFunctional);
  Rng rng(23);
  const int64_t m = 40, n = 12;
  const int topk = 3;
  Tensor in = Tensor::Alloc(world.device(0), "i", {m * topk, n}, DType::kBF16);
  Tensor out = Tensor::Alloc(world.device(0), "o", {m, n}, DType::kBF16);
  Tensor want = Tensor::Alloc(world.device(0), "w", {m, n}, DType::kBF16);
  FillRandom(in, rng);
  std::vector<float> weights(static_cast<size_t>(m * topk));
  for (auto& w : weights) w = rng.NextFloat();
  TopkReduceRef(in, want, weights, topk);
  world.RunSpmd([&](RankCtx& ctx) -> sim::Coro {
    LaunchTopkReduce(ctx, *ctx.stream, in, out, weights, topk);
    co_await SyncStream(ctx);
  });
  EXPECT_LT(MaxAbsDiff(out, want), 1e-5f);
}

}  // namespace
}  // namespace tilelink::compute
