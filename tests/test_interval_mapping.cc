// Interval tile-mapping utility (tilelink/mapping/interval_mapping.h):
// poplibs-style linear splits, extent-derived mappings for skewed MoE
// routings, and the imbalance/fragmentation measures the communication
// bounds consume.
#include <gtest/gtest.h>

#include "tilelink/mapping/interval_mapping.h"

namespace tilelink::tl {
namespace {

TEST(LinearTileMappingTest, EvenSplitIsBalancedAndContiguous) {
  const TileIntervals m = LinearTileMapping(1024, 4);
  ASSERT_EQ(m.size(), 4u);
  int64_t expect_lo = 0;
  for (int t = 0; t < 4; ++t) {
    ASSERT_EQ(m[t].size(), 1u);
    EXPECT_EQ(m[t][0].lo, expect_lo);
    EXPECT_EQ(TileElements(m, t), 256);
    expect_lo = m[t][0].hi;
  }
  EXPECT_EQ(TotalElements(m), 1024);
  EXPECT_EQ(MaxTileElements(m), 256);
  EXPECT_EQ(MinTileElements(m), 256);
  EXPECT_EQ(TileImbalance(m), 0);
}

TEST(LinearTileMappingTest, GrainAlignedCeilSplitLeavesRaggedTail) {
  // 1000 elements at grain 128 -> 8 grains, 2 grains per tile: three full
  // 256-element tiles and a 232-element tail.
  const TileIntervals m = LinearTileMapping(1000, 4, /*grain_size=*/128);
  ASSERT_EQ(m.size(), 4u);
  EXPECT_EQ(TileElements(m, 0), 256);
  EXPECT_EQ(TileElements(m, 1), 256);
  EXPECT_EQ(TileElements(m, 2), 256);
  EXPECT_EQ(TileElements(m, 3), 232);
  // Every interior boundary is grain-aligned.
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(m[t][0].hi % 128, 0);
  }
  EXPECT_EQ(TotalElements(m), 1000);
  // Grain rounding concentrates the surplus: max 256 vs ceil(1000/4) = 250.
  EXPECT_EQ(TileImbalance(m), 6);
}

TEST(LinearTileMappingTest, UnitGrainMappingsHaveZeroImbalance) {
  for (const auto& [elements, tiles] :
       std::vector<std::pair<int64_t, int>>{
           {1, 1}, {7, 3}, {128, 8}, {1000, 7}, {8192, 16}}) {
    const TileIntervals m = LinearTileMapping(elements, tiles);
    EXPECT_EQ(TotalElements(m), elements);
    EXPECT_EQ(TileImbalance(m), 0) << elements << "/" << tiles;
  }
}

TEST(LinearTileMappingTest, MinElementsFloorShrinksUsedTiles) {
  // 100 elements with a 50-element floor fit on 2 of the 8 tiles; the
  // remaining tiles stay empty rather than dropping below the floor.
  const TileIntervals m =
      LinearTileMapping(100, 8, /*grain_size=*/1, /*min_elements_per_tile=*/50);
  ASSERT_EQ(m.size(), 8u);
  EXPECT_EQ(TileElements(m, 0), 50);
  EXPECT_EQ(TileElements(m, 1), 50);
  for (int t = 2; t < 8; ++t) EXPECT_EQ(TileElements(m, t), 0);
  EXPECT_EQ(MinTileElements(m), 0);  // min counts the empty tiles
  EXPECT_EQ(MaxTileElements(m), 50);
}

TEST(LinearTileMappingTest, FewerElementsThanTilesUsesOnePerElement) {
  const TileIntervals m = LinearTileMapping(3, 8);
  EXPECT_EQ(TotalElements(m), 3);
  EXPECT_EQ(TileElements(m, 0), 1);
  EXPECT_EQ(TileElements(m, 1), 1);
  EXPECT_EQ(TileElements(m, 2), 1);
  EXPECT_EQ(TileElements(m, 3), 0);
}

TEST(LinearTileMappingTest, ZeroElementsIsAllEmpty) {
  const TileIntervals m = LinearTileMapping(0, 4);
  EXPECT_EQ(TotalElements(m), 0);
  EXPECT_EQ(MaxTileElements(m), 0);
  EXPECT_EQ(MinTileElements(m), 0);
  EXPECT_EQ(TileImbalance(m), 0);
}

TEST(IntervalsFromExtentsTest, SkewedExtentsMeasureImbalance) {
  // A skewed MoE routing: experts own 5, 0 and 3 tokens.
  const TileIntervals m = IntervalsFromExtents({5, 0, 3});
  ASSERT_EQ(m.size(), 3u);
  EXPECT_EQ(TileElements(m, 0), 5);
  EXPECT_EQ(TileElements(m, 1), 0);
  EXPECT_EQ(TileElements(m, 2), 3);
  // Offsets are cumulative: the third extent starts where the first ends.
  EXPECT_EQ(m[2][0].lo, 5);
  EXPECT_EQ(TotalElements(m), 8);
  // max 5 vs ceil(8/3) = 3 balanced.
  EXPECT_EQ(TileImbalance(m), 2);
}

TEST(FragmentedGrainsTest, CountsCeilPerInterval) {
  // Each interval rounds up to its own grain count — fragmentation the
  // grouped GEMM pays per expert: ceil(5/4) + ceil(3/4) = 3 vs ceil(8/4)=2
  // for the dense concatenation.
  const TileIntervals m = IntervalsFromExtents({5, 0, 3});
  EXPECT_EQ(FragmentedGrains(m, 4), 3);
  EXPECT_EQ(FragmentedGrains(LinearTileMapping(8, 1), 4), 2);
  // Grain 1 degenerates to the element count.
  EXPECT_EQ(FragmentedGrains(m, 1), 8);
}

TEST(WeightedExtentsTest, ProportionalSplitSumsExactly) {
  // Healthy rails split evenly; a half-bandwidth rail gets half a share.
  EXPECT_EQ(WeightedExtents(12, {1.0, 1.0, 1.0, 1.0}),
            (std::vector<int64_t>{3, 3, 3, 3}));
  EXPECT_EQ(WeightedExtents(12, {1.0, 1.0, 1.0, 0.5}),
            (std::vector<int64_t>{4, 3, 3, 2}));
  // Largest-remainder with ties: leftover units go to the lowest index.
  EXPECT_EQ(WeightedExtents(7, {1.0, 1.0, 1.0}),
            (std::vector<int64_t>{3, 2, 2}));
}

TEST(WeightedExtentsTest, DeadWeightsReceiveNothing) {
  // A dead rail (weight 0) must get zero chunks even when the largest-
  // remainder pass hands out leftovers.
  EXPECT_EQ(WeightedExtents(12, {1.0, 1.0, 1.0, 0.0}),
            (std::vector<int64_t>{4, 4, 4, 0}));
  EXPECT_EQ(WeightedExtents(1, {0.0, 1.0}), (std::vector<int64_t>{0, 1}));
  // All dead: nothing is assignable (the caller falls back to rail 0 and
  // lets ack timeouts drive recovery).
  EXPECT_EQ(WeightedExtents(5, {0.0, 0.0}), (std::vector<int64_t>{0, 0}));
  EXPECT_EQ(WeightedExtents(0, {1.0, 1.0}), (std::vector<int64_t>{0, 0}));
}

}  // namespace
}  // namespace tilelink::tl
