// All baselines must produce the same numerics as the TileLink kernels and
// the serial references — only timing may differ (and must differ in the
// right direction: decomposition pays host sync, non-overlap serializes).
#include <gtest/gtest.h>

#include "baselines/attention_baselines.h"
#include "baselines/flux_baselines.h"
#include "baselines/mlp_baselines.h"
#include "baselines/moe_baselines.h"
#include "common/rng.h"
#include "compute/flash_attention.h"
#include "compute/group_gemm.h"
#include "compute/memops.h"
#include "compute/tile_math.h"
#include "runtime/world.h"
#include "tensor/tensor_ops.h"

namespace tilelink::baselines {
namespace {

using rt::ExecMode;
using rt::RankCtx;
using rt::World;

constexpr int kR = 4;

// Shared reference: out[r] = rows r of sum_p(a[p] @ b[p]).
Tensor GemmRsReference(World& world, const comm::SymTensor& a,
                       const comm::SymTensor& b, int64_t m, int64_t n) {
  Tensor total =
      Tensor::Alloc(world.device(0), "ref_total", {m, n}, DType::kBF16);
  Tensor tmp = Tensor::Alloc(world.device(0), "ref_tmp", {m, n}, DType::kBF16);
  FillConstant(total, 0.0f);
  for (size_t p = 0; p < a.size(); ++p) {
    compute::GemmRef(a[p], b[p], tmp);
    compute::AddTile(tmp, total, 0, m, 0, n, true);
  }
  return total;
}

TEST(MlpBaselines, NonOverlapAgGemmCorrect) {
  World world(sim::MachineSpec::Test(kR, 16), ExecMode::kFunctional);
  MlpPartConfig cfg{64 * kR, 32, 48, compute::GemmTiling{32, 16, 16}};
  NonOverlapAgGemm bench(world, cfg);
  Rng rng(61);
  for (int r = 0; r < kR; ++r) {
    FillRandom(bench.a_shards()[static_cast<size_t>(r)], rng, 0.5f);
    FillRandom(bench.b()[static_cast<size_t>(r)], rng, 0.5f);
  }
  world.RunSpmd([&](RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); });
  for (int r = 0; r < kR; ++r) {
    Tensor want = Tensor::Alloc(world.device(r), "w", {cfg.m, cfg.n},
                                DType::kBF16);
    compute::GemmRef(bench.a_full()[static_cast<size_t>(r)],
                     bench.b()[static_cast<size_t>(r)], want);
    EXPECT_LT(MaxAbsDiff(bench.c()[static_cast<size_t>(r)], want), 1e-4f);
  }
}

TEST(MlpBaselines, DecomposeAgGemmCorrectAndSlower) {
  MlpPartConfig cfg{64 * kR, 32, 48, compute::GemmTiling{32, 16, 16}};
  Rng rng(67);
  World world(sim::MachineSpec::Test(kR, 16), ExecMode::kFunctional);
  DecomposeAgGemm dec(world, cfg);
  NonOverlapAgGemm ref(world, cfg);
  for (int r = 0; r < kR; ++r) {
    FillRandom(dec.a_shards()[static_cast<size_t>(r)], rng, 0.5f);
    CopyTensor(dec.a_shards()[static_cast<size_t>(r)],
               ref.a_shards()[static_cast<size_t>(r)]);
    FillRandom(dec.b()[static_cast<size_t>(r)], rng, 0.5f);
    CopyTensor(dec.b()[static_cast<size_t>(r)],
               ref.b()[static_cast<size_t>(r)]);
  }
  world.RunSpmd([&](RankCtx& ctx) -> sim::Coro { co_await dec.Run(ctx); });
  world.RunSpmd([&](RankCtx& ctx) -> sim::Coro { co_await ref.Run(ctx); });
  for (int r = 0; r < kR; ++r) {
    EXPECT_LT(MaxAbsDiff(dec.c()[static_cast<size_t>(r)],
                         ref.c()[static_cast<size_t>(r)]),
              1e-4f);
  }
}

TEST(MlpBaselines, NonOverlapGemmRsCorrect) {
  World world(sim::MachineSpec::Test(kR, 16), ExecMode::kFunctional);
  MlpPartConfig cfg{32 * kR, 24, 40, compute::GemmTiling{32, 16, 8}};
  NonOverlapGemmRs bench(world, cfg);
  Rng rng(71);
  for (int r = 0; r < kR; ++r) {
    FillRandom(bench.a()[static_cast<size_t>(r)], rng, 0.3f);
    FillRandom(bench.b()[static_cast<size_t>(r)], rng, 0.3f);
  }
  world.RunSpmd([&](RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); });
  Tensor total = GemmRsReference(world, bench.a(), bench.b(), cfg.m, cfg.n);
  for (int r = 0; r < kR; ++r) {
    Tensor want = total.Slice(0, r * (cfg.m / kR), cfg.m / kR);
    EXPECT_LT(MaxAbsDiff(bench.out()[static_cast<size_t>(r)], want), 1e-3f);
  }
}

TEST(MlpBaselines, DecomposeGemmRsCorrect) {
  World world(sim::MachineSpec::Test(kR, 16), ExecMode::kFunctional);
  MlpPartConfig cfg{32 * kR, 24, 40, compute::GemmTiling{32, 16, 8}};
  DecomposeGemmRs bench(world, cfg);
  Rng rng(73);
  for (int r = 0; r < kR; ++r) {
    FillRandom(bench.a()[static_cast<size_t>(r)], rng, 0.3f);
    FillRandom(bench.b()[static_cast<size_t>(r)], rng, 0.3f);
  }
  world.RunSpmd([&](RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); });
  Tensor total = GemmRsReference(world, bench.a(), bench.b(), cfg.m, cfg.n);
  for (int r = 0; r < kR; ++r) {
    Tensor want = total.Slice(0, r * (cfg.m / kR), cfg.m / kR);
    EXPECT_LT(MaxAbsDiff(bench.out()[static_cast<size_t>(r)], want), 1e-3f);
  }
}

TEST(FluxBaselines, AgGemmCorrect) {
  World world(sim::MachineSpec::Test(kR, 16), ExecMode::kFunctional);
  world.checker().set_enabled(true);
  FluxConfig cfg{64 * kR, 32, 48, compute::GemmTiling{32, 16, 16}};
  FluxAgGemm bench(world, cfg);
  Rng rng(79);
  for (int r = 0; r < kR; ++r) {
    FillRandom(bench.a_shards()[static_cast<size_t>(r)], rng, 0.5f);
    FillRandom(bench.b()[static_cast<size_t>(r)], rng, 0.5f);
  }
  world.RunSpmd([&](RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); });
  EXPECT_TRUE(world.checker().violations().empty());
  for (int r = 0; r < kR; ++r) {
    Tensor gathered = Tensor::Alloc(world.device(r), "g", {cfg.m, cfg.k},
                                    DType::kBF16);
    for (int p = 0; p < kR; ++p) {
      Tensor dst = gathered.Slice(0, p * (cfg.m / kR), cfg.m / kR);
      CopyTensor(bench.a_shards()[static_cast<size_t>(p)], dst);
    }
    Tensor want = Tensor::Alloc(world.device(r), "w", {cfg.m, cfg.n},
                                DType::kBF16);
    compute::GemmRef(gathered, bench.b()[static_cast<size_t>(r)], want);
    EXPECT_LT(MaxAbsDiff(bench.c()[static_cast<size_t>(r)], want), 1e-4f);
  }
}

TEST(FluxBaselines, GemmRsCorrect) {
  World world(sim::MachineSpec::Test(kR, 16), ExecMode::kFunctional);
  FluxConfig cfg{32 * kR, 24, 40, compute::GemmTiling{32, 16, 8}};
  FluxGemmRs bench(world, cfg);
  Rng rng(83);
  for (int r = 0; r < kR; ++r) {
    FillRandom(bench.a()[static_cast<size_t>(r)], rng, 0.3f);
    FillRandom(bench.b()[static_cast<size_t>(r)], rng, 0.3f);
  }
  world.RunSpmd([&](RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); });
  Tensor total = GemmRsReference(world, bench.a(), bench.b(), cfg.m, cfg.n);
  for (int r = 0; r < kR; ++r) {
    Tensor want = total.Slice(0, r * (cfg.m / kR), cfg.m / kR);
    EXPECT_LT(MaxAbsDiff(bench.out()[static_cast<size_t>(r)], want), 1e-3f);
  }
}

class MoeImplTest : public ::testing::TestWithParam<MoeImpl> {};

TEST_P(MoeImplTest, Part1Correct) {
  const MoeImpl impl = GetParam();
  World world(sim::MachineSpec::Test(kR, 16), ExecMode::kFunctional);
  MoePartConfig cfg{16 * kR, 24, 32, 4, 2, compute::GemmTiling{16, 16, 8}};
  Rng rng(89);
  compute::MoeRouting routing =
      compute::RandomRouting(cfg.m, cfg.num_experts, cfg.topk, rng);
  MoePart1 bench(world, cfg, routing, impl);
  for (int r = 0; r < kR; ++r) {
    FillRandom(bench.token_shards()[static_cast<size_t>(r)], rng, 0.4f);
    FillRandom(bench.weights()[static_cast<size_t>(r)], rng, 0.4f);
  }
  world.RunSpmd([&](RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); });
  for (int r = 0; r < kR; ++r) {
    Tensor gathered = Tensor::Alloc(world.device(r), "g",
                                    {cfg.m, cfg.hidden}, DType::kBF16);
    for (int p = 0; p < kR; ++p) {
      Tensor dst = gathered.Slice(0, p * (cfg.m / kR), cfg.m / kR);
      CopyTensor(bench.token_shards()[static_cast<size_t>(p)], dst);
    }
    Tensor want = Tensor::Alloc(world.device(r), "w",
                                {cfg.m * cfg.topk, cfg.inner}, DType::kBF16);
    compute::GroupGemmRef(gathered, bench.weights()[static_cast<size_t>(r)],
                          want, routing);
    EXPECT_LT(MaxAbsDiff(bench.out()[static_cast<size_t>(r)], want), 1e-4f)
        << "impl " << static_cast<int>(impl) << " rank " << r;
  }
}

TEST_P(MoeImplTest, Part2Correct) {
  const MoeImpl impl = GetParam();
  World world(sim::MachineSpec::Test(kR, 16), ExecMode::kFunctional);
  MoePartConfig cfg{16 * kR, 20, 16, 4, 2, compute::GemmTiling{16, 16, 8}};
  Rng rng(97);
  compute::MoeRouting routing =
      compute::RandomRouting(cfg.m, cfg.num_experts, cfg.topk, rng);
  MoePart2 bench(world, cfg, routing, impl);
  for (int r = 0; r < kR; ++r) {
    FillRandom(bench.acts()[static_cast<size_t>(r)], rng, 0.3f);
    FillRandom(bench.weights()[static_cast<size_t>(r)], rng, 0.3f);
  }
  world.RunSpmd([&](RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); });
  // Reference.
  const int64_t m_per = cfg.m / kR;
  Tensor total = Tensor::Alloc(world.device(0), "t", {cfg.m, cfg.hidden},
                               DType::kBF16);
  FillConstant(total, 0.0f);
  for (int p = 0; p < kR; ++p) {
    Tensor exp_out = Tensor::Alloc(world.device(p), "e",
                                   {cfg.m * cfg.topk, cfg.hidden},
                                   DType::kBF16);
    for (int64_t slot = 0; slot < cfg.m * cfg.topk; ++slot) {
      const int e = routing.topk_ids[static_cast<size_t>(slot)];
      const Tensor w = bench.weights()[static_cast<size_t>(p)].Select(0, e);
      for (int64_t c = 0; c < cfg.hidden; ++c) {
        float acc = 0.0f;
        for (int64_t x = 0; x < cfg.inner; ++x) {
          acc += bench.acts()[static_cast<size_t>(p)].at({slot, x}) *
                 w.at({x, c});
        }
        exp_out.at({slot, c}) = acc;
      }
    }
    Tensor combined = Tensor::Alloc(world.device(p), "c",
                                    {cfg.m, cfg.hidden}, DType::kBF16);
    compute::TopkReduceRef(exp_out, combined, routing.topk_weights, cfg.topk);
    compute::AddTile(combined, total, 0, cfg.m, 0, cfg.hidden, true);
  }
  for (int r = 0; r < kR; ++r) {
    Tensor want = total.Slice(0, r * m_per, m_per);
    EXPECT_LT(MaxAbsDiff(bench.out()[static_cast<size_t>(r)], want), 1e-3f)
        << "impl " << static_cast<int>(impl);
  }
}

INSTANTIATE_TEST_SUITE_P(Impls, MoeImplTest,
                         ::testing::Values(MoeImpl::kCublas, MoeImpl::kCutlass,
                                           MoeImpl::kVllm));

TEST(AttentionBaselines, TorchMatchesReference) {
  World world(sim::MachineSpec::Test(kR, 16), ExecMode::kFunctional);
  AttentionConfig cfg;
  cfg.batch_heads = 2;
  cfg.seq = 16 * kR;
  cfg.head_dim = 16;
  cfg.block_q = 16;
  cfg.block_kv = 16;
  TorchAttention bench(world, cfg);
  Rng rng(101);
  for (int r = 0; r < kR; ++r) {
    FillRandom(bench.q()[static_cast<size_t>(r)], rng, 0.4f);
    FillRandom(bench.k_shards()[static_cast<size_t>(r)], rng, 0.4f);
    FillRandom(bench.v_shards()[static_cast<size_t>(r)], rng, 0.4f);
  }
  world.RunSpmd([&](RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); });
  const int64_t s_per = cfg.seq / kR;
  for (int r = 0; r < kR; ++r) {
    Tensor kf = Tensor::Alloc(world.device(r), "kf",
                              {cfg.batch_heads, cfg.seq, cfg.head_dim},
                              DType::kBF16);
    Tensor vf = Tensor::Alloc(world.device(r), "vf",
                              {cfg.batch_heads, cfg.seq, cfg.head_dim},
                              DType::kBF16);
    for (int p = 0; p < kR; ++p) {
      Tensor kd = kf.Slice(1, p * s_per, s_per);
      Tensor vd = vf.Slice(1, p * s_per, s_per);
      CopyTensor(bench.k_shards()[static_cast<size_t>(p)], kd);
      CopyTensor(bench.v_shards()[static_cast<size_t>(p)], vd);
    }
    Tensor want = Tensor::Alloc(world.device(r), "w",
                                {cfg.batch_heads, s_per, cfg.head_dim},
                                DType::kBF16);
    compute::AttentionRef(bench.q()[static_cast<size_t>(r)], kf, vf, want);
    EXPECT_LT(MaxAbsDiff(bench.out()[static_cast<size_t>(r)], want), 2e-4f);
  }
}

TEST(AttentionBaselines, RingAttentionMatchesReference) {
  World world(sim::MachineSpec::Test(kR, 16), ExecMode::kFunctional);
  AttentionConfig cfg;
  cfg.batch_heads = 2;
  cfg.seq = 16 * kR;
  cfg.head_dim = 16;
  cfg.block_q = 16;
  cfg.block_kv = 16;
  RingAttention bench(world, cfg);
  Rng rng(103);
  for (int r = 0; r < kR; ++r) {
    FillRandom(bench.q()[static_cast<size_t>(r)], rng, 0.4f);
    FillRandom(bench.k_shards()[static_cast<size_t>(r)], rng, 0.4f);
    FillRandom(bench.v_shards()[static_cast<size_t>(r)], rng, 0.4f);
  }
  world.RunSpmd([&](RankCtx& ctx) -> sim::Coro { co_await bench.Run(ctx); });
  const int64_t s_per = cfg.seq / kR;
  for (int r = 0; r < kR; ++r) {
    Tensor kf = Tensor::Alloc(world.device(r), "kf",
                              {cfg.batch_heads, cfg.seq, cfg.head_dim},
                              DType::kBF16);
    Tensor vf = Tensor::Alloc(world.device(r), "vf",
                              {cfg.batch_heads, cfg.seq, cfg.head_dim},
                              DType::kBF16);
    for (int p = 0; p < kR; ++p) {
      Tensor kd = kf.Slice(1, p * s_per, s_per);
      Tensor vd = vf.Slice(1, p * s_per, s_per);
      CopyTensor(bench.k_shards()[static_cast<size_t>(p)], kd);
      CopyTensor(bench.v_shards()[static_cast<size_t>(p)], vd);
    }
    Tensor want = Tensor::Alloc(world.device(r), "w",
                                {cfg.batch_heads, s_per, cfg.head_dim},
                                DType::kBF16);
    compute::AttentionRef(bench.q()[static_cast<size_t>(r)], kf, vf, want);
    EXPECT_LT(MaxAbsDiff(bench.out()[static_cast<size_t>(r)], want), 2e-4f);
  }
}

}  // namespace
}  // namespace tilelink::baselines
