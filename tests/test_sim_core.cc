// Unit tests for the discrete-event simulator core: event ordering,
// coroutine composition, FIFO resources, flags, deadlock detection.
#include <gtest/gtest.h>

#include <vector>

#include "sim/coro.h"
#include "sim/coro_utils.h"
#include "sim/flag.h"
#include "sim/resource.h"
#include "sim/simulator.h"

namespace tilelink::sim {
namespace {

Coro DelayAndRecord(TimeNs delay, std::vector<TimeNs>* log, Simulator* sim) {
  co_await Delay{delay};
  log->push_back(sim->Now());
}

TEST(SimCore, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<TimeNs> log;
  sim.Spawn(DelayAndRecord(300, &log, &sim));
  sim.Spawn(DelayAndRecord(100, &log, &sim));
  sim.Spawn(DelayAndRecord(200, &log, &sim));
  sim.Run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], 100);
  EXPECT_EQ(log[1], 200);
  EXPECT_EQ(log[2], 300);
}

TEST(SimCore, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.At(50, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

Coro Nested(Simulator* sim, TimeNs* out) {
  co_await Delay{10};
  *out = sim->Now();
}

Coro Outer(Simulator* sim, TimeNs* child_time, TimeNs* parent_time) {
  co_await Delay{5};
  co_await Nested(sim, child_time);
  *parent_time = sim->Now();
}

TEST(SimCore, ChildCoroutineRunsInline) {
  Simulator sim;
  TimeNs child = -1, parent = -1;
  sim.Spawn(Outer(&sim, &child, &parent));
  sim.Run();
  EXPECT_EQ(child, 15);
  EXPECT_EQ(parent, 15);  // parent resumes at the same instant
}

Coro ThrowingChild() {
  co_await Delay{1};
  throw Error("child failed");
}

Coro CatchingParent(bool* caught) {
  try {
    co_await ThrowingChild();
  } catch (const Error&) {
    *caught = true;
  }
}

TEST(SimCore, ChildExceptionPropagatesToParent) {
  Simulator sim;
  bool caught = false;
  sim.Spawn(CatchingParent(&caught));
  sim.Run();
  EXPECT_TRUE(caught);
}

Coro UseResource(Resource* res, TimeNs hold, std::vector<TimeNs>* starts,
                 Simulator* sim) {
  co_await res->Acquire();
  starts->push_back(sim->Now());
  co_await Delay{hold};
  res->Release();
}

TEST(SimCore, ResourceFifoAdmission) {
  Simulator sim;
  Resource res(&sim, 2, "sms");
  std::vector<TimeNs> starts;
  for (int i = 0; i < 5; ++i) {
    sim.Spawn(UseResource(&res, 100, &starts, &sim));
  }
  sim.Run();
  ASSERT_EQ(starts.size(), 5u);
  // Two run immediately, then one each time a slot frees (waves).
  EXPECT_EQ(starts[0], 0);
  EXPECT_EQ(starts[1], 0);
  EXPECT_EQ(starts[2], 100);
  EXPECT_EQ(starts[3], 100);
  EXPECT_EQ(starts[4], 200);
}

TEST(SimCore, ResourceCountsAreConsistent) {
  Simulator sim;
  Resource res(&sim, 3, "r");
  EXPECT_EQ(res.capacity(), 3);
  EXPECT_EQ(res.available(), 3);
  EXPECT_EQ(res.in_use(), 0);
}

Coro WaitFlag(Flag* flag, uint64_t threshold, TimeNs* when, Simulator* sim) {
  co_await flag->WaitGe(threshold);
  *when = sim->Now();
}

Coro SetFlagAt(Flag* flag, TimeNs t, uint64_t value) {
  co_await Delay{t};
  flag->Set(value);
}

TEST(SimCore, FlagWakesAtThreshold) {
  Simulator sim;
  Flag flag(&sim, "f");
  TimeNs woke = -1;
  sim.Spawn(WaitFlag(&flag, 3, &woke, &sim));
  sim.Spawn(SetFlagAt(&flag, 100, 1));
  sim.Spawn(SetFlagAt(&flag, 200, 3));
  sim.Run();
  EXPECT_EQ(woke, 200);
}

TEST(SimCore, FlagIsMonotonic) {
  Simulator sim;
  Flag flag(&sim, "f");
  flag.Set(5);
  flag.Set(3);  // lower value ignored
  EXPECT_EQ(flag.value(), 5u);
  flag.Add(2);
  EXPECT_EQ(flag.value(), 7u);
}

Coro NeverWakes(Flag* flag) { co_await flag->WaitGe(1); }

TEST(SimCore, DeadlockIsDetectedAndNamed) {
  Simulator sim;
  Flag flag(&sim, "orphan_flag");
  sim.Spawn(NeverWakes(&flag));
  try {
    sim.Run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("orphan_flag"), std::string::npos);
  }
}

Coro SmallDelay(int* count) {
  co_await Delay{1};
  ++(*count);
}

TEST(SimCore, WhenAllJoinsAllChildren) {
  Simulator sim;
  int count = 0;
  auto parent = [](Simulator*, int* c) -> Coro {
    std::vector<Coro> children;
    for (int i = 0; i < 10; ++i) children.push_back(SmallDelay(c));
    co_await WhenAll(std::move(children));
    EXPECT_EQ(*c, 10);
  };
  sim.Spawn(parent(nullptr, &count));
  sim.Run();
  EXPECT_EQ(count, 10);
}

TEST(SimCore, DeterministicAcrossRuns) {
  auto run_once = []() {
    Simulator sim;
    Resource res(&sim, 3, "r");
    std::vector<TimeNs> starts;
    for (int i = 0; i < 20; ++i) {
      sim.Spawn(UseResource(&res, 37 + i, &starts, &sim));
    }
    sim.Run();
    return starts;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace tilelink::sim
