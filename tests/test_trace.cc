// Fabric observability layer: chrome-trace recorder correctness (JSON
// validity, escaping, flow pairing, counter monotonicity), the pay-for-use
// guarantee (makespans bitwise identical with tracing on or off, for every
// collective and the fused kernel, with and without an active FaultPlan),
// and the profiler oracles (compute-only traces expose zero comm, comm-only
// traces put the whole makespan on the critical path).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "sim/cost_model.h"
#include "sim/fault.h"
#include "sim/machine_spec.h"
#include "sim/profile.h"
#include "sim/trace.h"
#include "tilelink/multinode/payload_validation.h"

namespace tilelink::multinode {
namespace {

using sim::MachineSpec;
using sim::TimeNs;
using sim::TraceRecorder;
using Phase = sim::TraceRecorder::Phase;

MachineSpec TwoNodeSpec(int per_node) {
  MachineSpec spec = MachineSpec::H800x8();
  spec.num_devices = 2 * per_node;
  spec.devices_per_node = per_node;
  return spec;
}

tl::GemmHierRsConfig SmallFusedCfg(int ranks) {
  tl::GemmHierRsConfig cfg;
  cfg.m = static_cast<int64_t>(ranks) * 8;
  cfg.k = 8;
  cfg.n = 8;
  cfg.gemm = {4, 8, 4};
  cfg.rs_block_m = 4;
  cfg.nic_chunk_blocks = 2;
  return cfg;
}

// A small traced HierReduceScatter at 2x4: carries every event class the
// recorder supports (spans, flows, counters, instants come in under
// faults), shared by several structural tests below.
TraceRecorder RecordHierRs() {
  TraceRecorder rec;
  const PayloadReport r = ValidateHierReduceScatter(
      TwoNodeSpec(4), /*num_tiles=*/16, /*tile_bytes=*/64 << 10,
      /*tile_elems=*/64, HierConfig{}, /*plan=*/nullptr, &rec,
      /*trace_pid_base=*/0);
  EXPECT_TRUE(r.ok());
  EXPECT_GT(rec.size(), 0u);
  return rec;
}

// ---------------------------------------------------------------------------
// JSON serialization
// ---------------------------------------------------------------------------

TEST(TraceJson, EscapesHostileStringsAndStaysValid) {
  TraceRecorder rec;
  rec.SetProcessName(0, "rank \"zero\" \\ <primary>");
  const int tid = rec.Track(0, "lane\nwith\tcontrol\x01chars");
  rec.AddSpan(0, tid, "span \"name\"", 10, 20, sim::kCatCompute,
              {sim::TraceArg::Str("why", "a\\b\"c\nd"),
               sim::TraceArg::Num("bytes", 4096)});
  rec.AddInstant(0, tid, "fault.\"quoted\"", 15);
  rec.AddCounter(0, "track\\name", "series\"key", 16, 1.5);
  const std::string json = rec.ToJson();
  std::string err;
  EXPECT_TRUE(TraceRecorder::ValidateJson(json, &err)) << err;
  // The raw control byte must have been escaped away.
  EXPECT_EQ(json.find('\x01'), std::string::npos);
}

TEST(TraceJson, ValidatorRejectsMalformedDocuments) {
  EXPECT_FALSE(TraceRecorder::ValidateJson("{\"a\": }"));
  EXPECT_FALSE(TraceRecorder::ValidateJson("{\"a\": 1,}"));
  EXPECT_FALSE(TraceRecorder::ValidateJson("{\"a\": \"unterminated}"));
  EXPECT_FALSE(TraceRecorder::ValidateJson("[1, 2"));
  EXPECT_FALSE(TraceRecorder::ValidateJson("{\"a\": 1} trailing"));
  std::string err;
  EXPECT_FALSE(TraceRecorder::ValidateJson("{\"bad\": \x01}", &err));
  EXPECT_FALSE(err.empty());
}

TEST(TraceJson, SaveRoundTripsThroughDisk) {
  TraceRecorder rec = RecordHierRs();
  const std::string path = ::testing::TempDir() + "trace_roundtrip.json";
  rec.Save(path);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  std::string err;
  EXPECT_TRUE(TraceRecorder::ValidateJson(text, &err)) << err;
  // Streaming Save and in-memory ToJson must agree byte for byte.
  EXPECT_EQ(text, rec.ToJson());
}

TEST(TraceJson, RealTraceSerializesValid) {
  const TraceRecorder rec = RecordHierRs();
  std::string err;
  EXPECT_TRUE(TraceRecorder::ValidateJson(rec.ToJson(), &err)) << err;
}

// ---------------------------------------------------------------------------
// Flow events
// ---------------------------------------------------------------------------

TEST(TraceFlows, IdsAreUniqueAndFinishesArePaired) {
  const TraceRecorder rec = RecordHierRs();
  std::map<uint64_t, int> starts, finishes;
  for (const auto& e : rec.events()) {
    if (e.phase == Phase::kFlowStart) ++starts[e.flow];
    if (e.phase == Phase::kFlowFinish) ++finishes[e.flow];
  }
  EXPECT_GT(starts.size(), 0u);
  EXPECT_GT(finishes.size(), 0u);
  // Each id is emitted at most once per side; every finish has a matching
  // start (orphan starts are fine: not every publication finds a traced
  // consumer, e.g. the last ring hop).
  for (const auto& [id, n] : starts) {
    EXPECT_NE(id, 0u);
    EXPECT_EQ(n, 1) << "flow id " << id << " started " << n << " times";
  }
  for (const auto& [id, n] : finishes) {
    EXPECT_EQ(n, 1) << "flow id " << id << " finished " << n << " times";
    EXPECT_TRUE(starts.count(id)) << "flow id " << id << " has no start";
  }
}

TEST(TraceFlows, HierRsChainCoversProducerRingRailReduce) {
  const TraceRecorder rec = RecordHierRs();
  // Producer publication -> ring chunk -> ring reduce -> rail chunk ->
  // rail reduce: at least 3 arrows end-to-end.
  EXPECT_GE(sim::LongestFlowChain(rec), 3);
}

// ---------------------------------------------------------------------------
// Counter tracks
// ---------------------------------------------------------------------------

TEST(TraceCounters, PublishedPrefixAndRetiredAreMonotone) {
  const TraceRecorder rec = RecordHierRs();
  // Watermark counters never move backwards: the published prefix of every
  // in-order signal and the checker's retired-interval count.
  std::map<std::pair<int, std::string>, double> last_prefix;
  double last_retired = -1.0;
  size_t prefix_samples = 0;
  for (const auto& e : rec.events()) {
    if (e.phase != Phase::kCounter) continue;
    if (e.name == "published_prefix") {
      const auto key = std::make_pair(e.pid, e.category);
      auto it = last_prefix.find(key);
      if (it != last_prefix.end()) {
        EXPECT_GE(e.value, it->second) << e.category << " on pid " << e.pid;
      }
      last_prefix[key] = e.value;
      ++prefix_samples;
    } else if (e.name == "checker.retired") {
      EXPECT_GE(e.value, last_retired);
      last_retired = e.value;
    }
  }
  EXPECT_GT(prefix_samples, 0u);
}

TEST(TraceCounters, WindowOccupancyStaysWithinDepthAndDrainsToZero) {
  const TraceRecorder rec = RecordHierRs();
  // Per link stream, in-flight window occupancy is bounded below by zero
  // and every stream's final sample is a drained 0.
  std::map<std::pair<int, std::string>, double> final_value;
  size_t samples = 0;
  for (const auto& e : rec.events()) {
    if (e.phase != Phase::kCounter || e.category != "in_flight") continue;
    EXPECT_GE(e.value, 0.0);
    final_value[std::make_pair(e.pid, e.name)] = e.value;
    ++samples;
  }
  EXPECT_GT(samples, 0u);
  for (const auto& [key, v] : final_value) {
    EXPECT_EQ(v, 0.0) << key.second << " on pid " << key.first
                      << " never drained";
  }
}

// ---------------------------------------------------------------------------
// Pay-for-use: tracing never changes simulated time
// ---------------------------------------------------------------------------

TEST(TraceInvariance, MakespansBitwiseIdenticalAcrossAllCollectives) {
  const MachineSpec spec = TwoNodeSpec(4);
  const HierConfig cfg;
  const int64_t tiles = 16;
  const uint64_t tb = 64 << 10;
  const int64_t te = 64;
  sim::FaultPlan plan;
  plan.RandomTransients("nic", /*seed=*/7, /*drop_prob=*/0.15,
                        /*spike_prob=*/0.15, /*spike_mult=*/3.0);
  struct Case {
    const char* name;
    std::function<PayloadReport(const sim::FaultPlan*, TraceRecorder*)> run;
  };
  const Case cases[] = {
      {"hier_ag",
       [&](const sim::FaultPlan* p, TraceRecorder* t) {
         return ValidateHierAllGather(spec, tiles, tb, te, cfg, p, t);
       }},
      {"flat_ag",
       [&](const sim::FaultPlan* p, TraceRecorder* t) {
         return ValidateFlatAllGather(spec, tiles, tb, te, cfg, p, t);
       }},
      {"hier_rs",
       [&](const sim::FaultPlan* p, TraceRecorder* t) {
         return ValidateHierReduceScatter(spec, tiles, tb, te, cfg, p, t);
       }},
      {"flat_rs",
       [&](const sim::FaultPlan* p, TraceRecorder* t) {
         return ValidateFlatReduceScatter(spec, tiles, tb, te, cfg, p, t);
       }},
      {"dp_ar",
       [&](const sim::FaultPlan* p, TraceRecorder* t) {
         return ValidateDpAllReduce(spec, tiles, tb, te, cfg, p, t);
       }},
      {"gemm_hier_rs",
       [&](const sim::FaultPlan* p, TraceRecorder* t) {
         return ValidateGemmHierRs(spec, SmallFusedCfg(spec.num_devices), p,
                                   t);
       }},
  };
  for (const Case& c : cases) {
    for (const sim::FaultPlan* p :
         {static_cast<const sim::FaultPlan*>(nullptr),
          static_cast<const sim::FaultPlan*>(&plan)}) {
      TraceRecorder rec;
      const PayloadReport traced = c.run(p, &rec);
      const PayloadReport quiet = c.run(p, nullptr);
      EXPECT_TRUE(traced.ok()) << c.name;
      EXPECT_EQ(traced.makespan, quiet.makespan)
          << c.name << (p ? " (faulted)" : "") << ": tracing changed time";
      EXPECT_GT(rec.size(), 0u) << c.name;
    }
  }
}

TEST(TraceInvariance, FaultedTraceCarriesFaultInstants) {
  const MachineSpec spec = TwoNodeSpec(4);
  sim::FaultPlan plan;
  plan.RandomTransients("nic", /*seed=*/3, /*drop_prob=*/0.3,
                        /*spike_prob=*/0.3, /*spike_mult=*/2.0);
  TraceRecorder rec;
  const PayloadReport r = ValidateHierAllGather(
      spec, /*num_tiles=*/16, 64 << 10, 64, HierConfig{}, &plan, &rec);
  EXPECT_TRUE(r.ok());
  ASSERT_GT(r.faults.drops + r.faults.spikes, 0u);
  size_t instants = 0;
  for (const auto& e : rec.events()) {
    if (e.phase == Phase::kInstant && e.name.rfind("fault.", 0) == 0) {
      ++instants;
    }
  }
  EXPECT_GE(instants, 1u);
}

// ---------------------------------------------------------------------------
// Profiler oracles
// ---------------------------------------------------------------------------

// Compute-only trace with cost-model wave durations: exposed comm must be
// *exactly* zero and compute utilization exactly busy/makespan.
TEST(ProfileOracle, ComputeOnlyExposesZeroComm) {
  const MachineSpec spec = MachineSpec::H800x8();
  const sim::CostModel cost(spec);
  // Three back-to-back waves then one idle wave: busy = 3T, makespan = 4T.
  const TimeNs T =
      cost.MemoryBound(/*bytes=*/8ull << 20, spec.sms_per_device);
  ASSERT_GT(T, 0);
  TraceRecorder rec;
  const int tid = rec.Track(0, "sms");
  for (int w = 0; w < 3; ++w) {
    rec.AddSpan(0, tid, "wave", w * T, (w + 1) * T, sim::kCatCompute);
  }
  rec.AddSpan(0, tid, "tail", 4 * T, 4 * T, sim::kCatCompute);  // pins t1
  const sim::Profile p = sim::BuildProfile(rec);
  std::string why;
  EXPECT_TRUE(p.Consistent(&why)) << why;
  EXPECT_EQ(p.makespan, 4 * T);
  EXPECT_EQ(p.exposed_comm, 0);
  EXPECT_EQ(p.exposed_comm_frac, 0.0);
  ASSERT_EQ(p.ranks.size(), 1u);
  EXPECT_EQ(p.ranks[0].compute_busy, 3 * T);
  EXPECT_EQ(p.compute_util, 0.75);  // 3T/4T, exact in binary
}

// Comm-only gapless chain on one track: the whole makespan is exposed and
// the critical-path walk must recover it exactly.
TEST(ProfileOracle, CommOnlyCriticalPathEqualsMakespan) {
  TraceRecorder rec;
  const int tid = rec.Track(5, "rail0");
  const TimeNs T = 12345;
  const int chunks = 6;
  for (int i = 0; i < chunks; ++i) {
    rec.AddSpan(5, tid, "chunk" + std::to_string(i), i * T, (i + 1) * T,
                sim::kCatComm);
  }
  const sim::Profile p = sim::BuildProfile(rec);
  std::string why;
  EXPECT_TRUE(p.Consistent(&why)) << why;
  EXPECT_EQ(p.makespan, chunks * T);
  EXPECT_EQ(p.critical_path, p.makespan);
  EXPECT_EQ(p.critical_span, p.makespan);
  ASSERT_EQ(p.ranks.size(), 1u);
  EXPECT_EQ(p.ranks[0].exposed_comm, chunks * T);  // nothing hides it
  EXPECT_EQ(p.ranks[0].compute_busy, 0);
}

// Comm fully nested under compute on the same pid: zero exposed comm even
// though comm_busy is large (the overlap case the fused kernels exist for).
TEST(ProfileOracle, OverlappedCommIsNotExposed) {
  TraceRecorder rec;
  const int sm = rec.Track(2, "sms");
  const int lane = rec.Track(2, "lane");
  rec.AddSpan(2, sm, "gemm", 0, 1000, sim::kCatCompute);
  rec.AddSpan(2, lane, "push", 100, 900, sim::kCatComm);
  const sim::Profile p = sim::BuildProfile(rec);
  ASSERT_EQ(p.ranks.size(), 1u);
  EXPECT_EQ(p.ranks[0].comm_busy, 800);
  EXPECT_EQ(p.ranks[0].exposed_comm, 0);
  EXPECT_EQ(p.exposed_comm_frac, 0.0);
}

TEST(ProfileOracle, RealTraceIsInternallyConsistent) {
  const TraceRecorder rec = RecordHierRs();
  const sim::Profile p = sim::BuildProfile(rec);
  std::string why;
  EXPECT_TRUE(p.Consistent(&why)) << why;
  EXPECT_GT(p.makespan, 0);
  EXPECT_LE(p.critical_path, p.makespan);
  EXPECT_GT(p.critical_path, 0);
  EXPECT_GT(p.wire_util, 0.0);
  EXPECT_LE(p.wire_util, 1.0);
  EXPECT_FALSE(p.path.empty());
  EXPECT_FALSE(sim::FormatCriticalPath(p).empty());
}

}  // namespace
}  // namespace tilelink::multinode
