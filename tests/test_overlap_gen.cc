// Overlap generator (builder/tile_deps + builder/overlap_gen): the
// declarative spec layer must reproduce the hand-built schedules exactly.
//
// Identity suite: every ported kernel runs twice — hand_built=true (the
// original literal schedule, kept as the regression oracle) and
// hand_built=false (spec -> OverlapPlanner -> RolePlan) — on the same
// topology with identically seeded inputs. The two paths must agree to the
// nanosecond on makespan and bit-for-bit on every rank's output, with the
// consistency checker observing zero violations on both. Covered at 2x8
// (H800x16) and 3x2 (three nodes of two).
//
// Also here: OverlapSpec::Validate rejection messages (named fields),
// spec/plan Describe determinism, the generated ag_gemm_hier's degenerate
// honesty (1xN == ag_gemm, Nx1, 1x1) and the small-m column-split fix.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "compute/moe_routing.h"
#include "runtime/world.h"
#include "sim/machine_spec.h"
#include "tensor/tensor_ops.h"
#include "tilelink/builder/overlap_gen.h"
#include "tilelink/builder/tile_deps.h"
#include "tilelink/kernels/ag_attention.h"
#include "tilelink/kernels/ag_gemm.h"
#include "tilelink/kernels/ag_gemm_hier.h"
#include "tilelink/kernels/ag_moe.h"
#include "tilelink/kernels/gemm_hier_rs.h"
#include "tilelink/kernels/gemm_rs.h"
#include "tilelink/kernels/moe_rs.h"
#include "tilelink/multinode/multinode_tuning.h"
#include "tilelink/multinode/payload_validation.h"

namespace tilelink::tl {
namespace {

using rt::ExecMode;
using rt::RankCtx;
using rt::World;
using sim::MachineSpec;
using sim::TimeNs;

// ---------------------------------------------------------------------- //
// Topologies: the ISSUE's 2x8 and 3x2. SM count is orthogonal to the
// schedule identity (both paths claim against the same budget), so the
// flat kernels run with a reduced budget to keep the suite fast; the
// hierarchical kernel keeps the full H800 budget (its roles want 20+8).
// ---------------------------------------------------------------------- //

MachineSpec TwoByEight(int sms = 0) {
  MachineSpec spec = MachineSpec::H800x16();
  if (sms > 0) spec.sms_per_device = sms;
  return spec;
}

MachineSpec ThreeByTwo(int sms = 0) {
  MachineSpec spec = MachineSpec::H800x8();
  spec.num_devices = 6;
  spec.devices_per_node = 2;
  if (sms > 0) spec.sms_per_device = sms;
  return spec;
}

// One functional run of one path. The functional makespan is identical to
// the timing-only makespan (pinned elsewhere), so a single run yields both
// the nanosecond identity and the payload bits.
struct PathRun {
  TimeNs makespan = 0;
  std::size_t violations = 0;
  std::vector<std::vector<float>> outs;  // per rank, flattened
};

std::vector<float> Flat(const Tensor& t) {
  std::span<const float> d = t.buffer()->data();
  return std::vector<float>(d.begin(), d.end());
}

template <typename RunFn>
void ExpectGeneratedMatchesHandBuilt(const RunFn& run, const char* label) {
  const PathRun gen = run(/*hand_built=*/false);
  const PathRun hand = run(/*hand_built=*/true);
  EXPECT_EQ(gen.makespan, hand.makespan) << label;
  EXPECT_EQ(gen.violations, 0u) << label;
  EXPECT_EQ(hand.violations, 0u) << label;
  ASSERT_EQ(gen.outs.size(), hand.outs.size()) << label;
  for (std::size_t r = 0; r < gen.outs.size(); ++r) {
    EXPECT_TRUE(gen.outs[r] == hand.outs[r])
        << label << ": rank " << r << " payload differs";
  }
}

template <typename Kernel>
PathRun FinishRun(World& world, Kernel& kernel, comm::SymTensor& outs) {
  PathRun run;
  run.makespan = world.RunSpmd(
      [&](RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });
  run.violations = world.checker().violations().size();
  for (int r = 0; r < world.size(); ++r) {
    run.outs.push_back(Flat(outs[static_cast<size_t>(r)]));
  }
  return run;
}

// ---------------------------------------------------------------------- //
// Generated-vs-hand-built identity, all six ported kernels
// ---------------------------------------------------------------------- //

TEST(OverlapGenIdentity, AgGemm) {
  for (const MachineSpec& spec : {TwoByEight(24), ThreeByTwo(24)}) {
    for (CommResource comm :
         {CommResource::kDma, CommResource::kSmPull, CommResource::kSmPush}) {
      auto run = [&](bool hand) {
        World world(spec, ExecMode::kFunctional);
        world.checker().set_enabled(true);
        AgGemmConfig cfg;
        cfg.m = 64 * spec.num_devices;
        cfg.k = 32;
        cfg.n = 48;
        cfg.gemm = compute::GemmTiling{32, 16, 16};
        cfg.comm_tile_m = 16;
        cfg.comm = comm;
        cfg.comm_sms = 4;
        cfg.hand_built = hand;
        AgGemm kernel(world, cfg);
        Rng rng(31);
        for (int r = 0; r < world.size(); ++r) {
          FillRandom(kernel.a_shards()[static_cast<size_t>(r)], rng, 0.5f);
          FillRandom(kernel.b()[static_cast<size_t>(r)], rng, 0.5f);
        }
        return FinishRun(world, kernel, kernel.c());
      };
      ExpectGeneratedMatchesHandBuilt(run, "ag_gemm");
    }
  }
}

TEST(OverlapGenIdentity, GemmRs) {
  for (const MachineSpec& spec : {TwoByEight(24), ThreeByTwo(24)}) {
    for (bool dma_push : {false, true}) {
      auto run = [&](bool hand) {
        World world(spec, ExecMode::kFunctional);
        world.checker().set_enabled(true);
        GemmRsConfig cfg;
        cfg.m = 64 * spec.num_devices;
        cfg.k = 24;
        cfg.n = 40;
        cfg.gemm = compute::GemmTiling{32, 16, 8};
        cfg.rs_block_m = 32;
        cfg.comm_sms = 4;
        cfg.dma_push = dma_push;
        cfg.hand_built = hand;
        GemmRs kernel(world, cfg);
        Rng rng(37);
        for (int r = 0; r < world.size(); ++r) {
          FillRandom(kernel.a()[static_cast<size_t>(r)], rng, 0.3f);
          FillRandom(kernel.b()[static_cast<size_t>(r)], rng, 0.3f);
        }
        return FinishRun(world, kernel, kernel.out());
      };
      ExpectGeneratedMatchesHandBuilt(run, "gemm_rs");
    }
  }
}

TEST(OverlapGenIdentity, AgAttention) {
  for (const MachineSpec& spec : {TwoByEight(24), ThreeByTwo(24)}) {
    auto run = [&](bool hand) {
      World world(spec, ExecMode::kFunctional);
      world.checker().set_enabled(true);
      AgAttentionConfig cfg;
      cfg.batch_heads = 2;
      cfg.seq = 32 * spec.num_devices;
      cfg.head_dim = 16;
      cfg.block_q = 16;
      cfg.block_kv = 16;
      cfg.hand_built = hand;
      AgAttention kernel(world, cfg);
      Rng rng(53);
      for (int r = 0; r < world.size(); ++r) {
        FillRandom(kernel.q()[static_cast<size_t>(r)], rng, 0.5f);
        FillRandom(kernel.k_shards()[static_cast<size_t>(r)], rng, 0.5f);
        FillRandom(kernel.v_shards()[static_cast<size_t>(r)], rng, 0.5f);
      }
      return FinishRun(world, kernel, kernel.out());
    };
    ExpectGeneratedMatchesHandBuilt(run, "ag_attention");
  }
}

TEST(OverlapGenIdentity, AgMoe) {
  for (const MachineSpec& spec : {TwoByEight(24), ThreeByTwo(24)}) {
    const int64_t m = 32 * spec.num_devices;
    Rng routing_rng(41);
    const compute::MoeRouting routing =
        compute::RandomRouting(m, /*num_experts=*/4, /*topk=*/2, routing_rng);
    auto run = [&](bool hand) {
      World world(spec, ExecMode::kFunctional);
      world.checker().set_enabled(true);
      AgMoeConfig cfg;
      cfg.m = m;
      cfg.hidden = 24;
      cfg.n = 32;
      cfg.num_experts = 4;
      cfg.topk = 2;
      cfg.gemm = compute::GemmTiling{16, 16, 8};
      cfg.comm_tile_m = 16;
      cfg.comm = CommResource::kSmPull;
      cfg.comm_sms = 4;
      cfg.hand_built = hand;
      AgMoe kernel(world, cfg, routing);
      Rng rng(43);
      for (int r = 0; r < world.size(); ++r) {
        FillRandom(kernel.token_shards()[static_cast<size_t>(r)], rng, 0.5f);
        FillRandom(kernel.weights()[static_cast<size_t>(r)], rng, 0.5f);
      }
      return FinishRun(world, kernel, kernel.out());
    };
    ExpectGeneratedMatchesHandBuilt(run, "ag_moe");
  }
}

TEST(OverlapGenIdentity, MoeRs) {
  for (const MachineSpec& spec : {TwoByEight(32), ThreeByTwo(32)}) {
    const int64_t m = 32 * spec.num_devices;
    Rng routing_rng(47);
    const compute::MoeRouting routing =
        compute::RandomRouting(m, /*num_experts=*/4, /*topk=*/2, routing_rng);
    auto run = [&](bool hand) {
      World world(spec, ExecMode::kFunctional);
      world.checker().set_enabled(true);
      MoeRsConfig cfg;
      cfg.m = m;
      cfg.k = 16;
      cfg.hidden = 24;
      cfg.num_experts = 4;
      cfg.topk = 2;
      cfg.gemm = compute::GemmTiling{16, 24, 8};
      cfg.sorted_channel_rows = 32;
      cfg.reduce_block_tokens = 16;
      cfg.reduce_sms = 4;
      cfg.rs_block_m = 32;
      cfg.comm_sms = 4;
      cfg.hand_built = hand;
      MoeRs kernel(world, cfg, routing);
      Rng rng(49);
      for (int r = 0; r < world.size(); ++r) {
        FillRandom(kernel.acts()[static_cast<size_t>(r)], rng, 0.5f);
        FillRandom(kernel.weights()[static_cast<size_t>(r)], rng, 0.5f);
      }
      return FinishRun(world, kernel, kernel.out());
    };
    ExpectGeneratedMatchesHandBuilt(run, "moe_rs");
  }
}

TEST(OverlapGenIdentity, GemmHierRs) {
  // cpb = m_per_rank / rs_block_m = 8 >= kMinRingChunksPerBlock: the
  // planner's column split stays at 1, the regime where the hand-built
  // oracle is defined (the split's own coverage is SmallM* below).
  for (const MachineSpec& spec : {TwoByEight(), ThreeByTwo()}) {
    auto run = [&](bool hand) {
      World world(spec, ExecMode::kFunctional);
      world.checker().set_enabled(true);
      GemmHierRsConfig cfg;
      cfg.m = 32 * spec.num_devices;
      cfg.k = 8;
      cfg.n = 8;
      cfg.gemm = compute::GemmTiling{4, 8, 4};
      cfg.rs_block_m = 4;
      cfg.nic_chunk_blocks = 2;
      cfg.hand_built = hand;
      GemmHierRs kernel(world, cfg);
      Rng rng(59);
      for (int r = 0; r < world.size(); ++r) {
        FillRandom(kernel.a()[static_cast<size_t>(r)], rng, 0.3f);
        FillRandom(kernel.b()[static_cast<size_t>(r)], rng, 0.3f);
      }
      return FinishRun(world, kernel, kernel.out());
    };
    ExpectGeneratedMatchesHandBuilt(run, "gemm_hier_rs");
  }
}

// ---------------------------------------------------------------------- //
// OverlapSpec::Validate — one named-field message per rejection class
// ---------------------------------------------------------------------- //

OverlapSpec BaseSpec() {
  OverlapSpec spec;
  spec.kernel = "test_kernel";
  spec.spaces.push_back({"in", /*tiles=*/8, /*tile_rows=*/16,
                         /*resident=*/true});
  spec.spaces.push_back({"out", 8, 16, false});
  OverlapRoleSpec gemm;
  gemm.name = "gemm";
  gemm.kind = OverlapRoleKind::kCompute;
  gemm.reads.push_back({"in", 0, 0});
  gemm.writes.push_back({"out", 0, 0});
  spec.roles.push_back(gemm);
  return spec;
}

void ExpectRejects(const OverlapSpec& spec, const std::string& fragment) {
  const std::string err = spec.Validate();
  EXPECT_FALSE(err.empty()) << "expected rejection containing \"" << fragment
                            << "\"";
  EXPECT_NE(err.find(fragment), std::string::npos)
      << "error \"" << err << "\" does not name \"" << fragment << "\"";
}

TEST(OverlapSpecValidate, AcceptsWellFormedSpec) {
  EXPECT_EQ(BaseSpec().Validate(), "");
}

TEST(OverlapSpecValidate, RejectsDanglingTileReference) {
  OverlapSpec spec = BaseSpec();
  spec.roles[0].reads.push_back({"ghost", 0, 0});
  ExpectRejects(spec, "dangling tile reference");
  ExpectRejects(spec, "ghost");
}

TEST(OverlapSpecValidate, RejectsOutOfRangeTileRange) {
  OverlapSpec spec = BaseSpec();
  spec.roles[0].writes[0] = {"out", 4, 12};  // space has 8 tiles
  ExpectRejects(spec, "outside space");
}

TEST(OverlapSpecValidate, RejectsDuplicateSpaceAndRoleNames) {
  OverlapSpec dup_space = BaseSpec();
  dup_space.spaces.push_back({"in", 4, 8, true});
  ExpectRejects(dup_space, "duplicate space");
  OverlapSpec dup_role = BaseSpec();
  dup_role.roles.push_back(dup_role.roles[0]);
  ExpectRejects(dup_role, "duplicate role");
}

TEST(OverlapSpecValidate, RejectsNonCoveringConsumerRead) {
  OverlapSpec spec = BaseSpec();
  // A second non-resident space only half-written by the producer: a
  // consumer reading the whole space must be rejected.
  spec.spaces.push_back({"stage", 8, 16, false});
  spec.roles[0].writes.push_back({"stage", 0, 4});
  OverlapRoleSpec consumer;
  consumer.name = "consumer";
  consumer.kind = OverlapRoleKind::kCompute;
  consumer.reads.push_back({"stage", 0, 8});
  spec.roles.push_back(consumer);
  ExpectRejects(spec, "non-covering read");
  ExpectRejects(spec, "stage");
}

TEST(OverlapSpecValidate, RejectsCyclicProducerConsumerDependence) {
  OverlapSpec spec = BaseSpec();
  spec.spaces.push_back({"ping", 4, 16, false});
  spec.spaces.push_back({"pong", 4, 16, false});
  OverlapRoleSpec a;
  a.name = "a";
  a.kind = OverlapRoleKind::kCompute;
  a.reads.push_back({"pong", 0, 0});
  a.writes.push_back({"ping", 0, 0});
  OverlapRoleSpec b;
  b.name = "b";
  b.kind = OverlapRoleKind::kCompute;
  b.reads.push_back({"ping", 0, 0});
  b.writes.push_back({"pong", 0, 0});
  spec.roles.push_back(a);
  spec.roles.push_back(b);
  ExpectRejects(spec, "cyclic producer/consumer dependence");
}

TEST(OverlapSpecValidate, RejectsBadRoleKindGeometry) {
  OverlapSpec comm = BaseSpec();
  OverlapRoleSpec c;
  c.name = "reduce";
  c.kind = OverlapRoleKind::kComm;  // needs explicit work_items
  c.reads.push_back({"in", 0, 0});
  comm.roles.push_back(c);
  ExpectRejects(comm, "work_items");

  OverlapSpec ring = BaseSpec();
  OverlapRoleSpec r;
  r.name = "ring";
  r.kind = OverlapRoleKind::kRingReduceScatter;
  r.reads.push_back({"in", 0, 0});
  r.block_rows = 30;  // chunk_rows must divide block_rows
  r.chunk_rows = 4;
  ring.roles.push_back(r);
  ExpectRejects(ring, "chunk_rows");

  OverlapSpec rail = BaseSpec();
  OverlapRoleSpec n;
  n.name = "rail";
  n.kind = OverlapRoleKind::kNicRailPush;
  n.reads.push_back({"in", 0, 0});
  n.peers = 0;  // no rail geometry at all
  rail.roles.push_back(n);
  ExpectRejects(rail, "nic_rail_push");
}

// ---------------------------------------------------------------------- //
// Spec / plan round-trip determinism
// ---------------------------------------------------------------------- //

TEST(OverlapSpecRoundTrip, DescribeAndPlanAreDeterministic) {
  const MachineSpec spec = TwoByEight();
  auto build = [&]() {
    World world(spec, ExecMode::kTimingOnly);
    GemmHierRsConfig cfg;
    cfg.m = 32 * spec.num_devices;
    cfg.k = 8;
    cfg.n = 8;
    cfg.gemm = compute::GemmTiling{4, 8, 4};
    cfg.rs_block_m = 4;
    GemmHierRs kernel(world, cfg);
    EXPECT_EQ(kernel.overlap_spec().Validate(), "");
    return std::pair<std::string, std::string>(
        kernel.overlap_spec().Describe(), kernel.overlap_plan().Describe());
  };
  const auto [spec1, plan1] = build();
  const auto [spec2, plan2] = build();
  EXPECT_FALSE(spec1.empty());
  EXPECT_FALSE(plan1.empty());
  EXPECT_EQ(spec1, spec2);  // same config -> byte-identical spec
  EXPECT_EQ(plan1, plan2);  // same spec + budget -> byte-identical plan
  // Describe is a pure function: re-describing does not perturb anything.
  const auto [spec3, plan3] = build();
  EXPECT_EQ(spec1, spec3);
  EXPECT_EQ(plan1, plan3);
}

TEST(OverlapSpecRoundTrip, GeneratedHierSpecIsDeterministic) {
  const MachineSpec spec = TwoByEight();
  auto build = [&]() {
    World world(spec, ExecMode::kTimingOnly);
    AgGemmHierConfig cfg;
    cfg.m = 32 * spec.num_devices;
    cfg.k = 16;
    cfg.n = 16;
    cfg.gemm = compute::GemmTiling{8, 16, 8};
    cfg.comm_tile_m = 16;
    AgGemmHier kernel(world, cfg);
    EXPECT_EQ(kernel.overlap_spec().Validate(), "");
    return kernel.overlap_spec().Describe() + kernel.overlap_plan().Describe();
  };
  EXPECT_EQ(build(), build());
}

// ---------------------------------------------------------------------- //
// Generated ag_gemm_hier: degenerate honesty
// ---------------------------------------------------------------------- //

TEST(AgGemmHierDegenerate, OneNodeMatchesAgGemmMakespan) {
  // 1xN: the generated spec must *be* ag_gemm — nanosecond-equal makespan
  // on the same flat config.
  const MachineSpec spec = MachineSpec::Test(8, /*sms=*/16);
  World hier_world(spec, ExecMode::kTimingOnly);
  AgGemmHierConfig hcfg;
  hcfg.m = 64 * spec.num_devices;
  hcfg.k = 32;
  hcfg.n = 48;
  hcfg.gemm = compute::GemmTiling{32, 16, 16};
  hcfg.comm_tile_m = 16;
  hcfg.comm = CommResource::kSmPush;
  hcfg.comm_sms = 4;
  AgGemmHier hier(hier_world, hcfg);
  EXPECT_EQ(hier.col_splits(), 1);
  EXPECT_EQ(hier.rail_blocks(), 0);
  const TimeNs t_hier = hier_world.RunSpmd(
      [&](RankCtx& ctx) -> sim::Coro { co_await hier.Run(ctx); });

  World flat_world(spec, ExecMode::kTimingOnly);
  AgGemmConfig fcfg;
  fcfg.m = hcfg.m;
  fcfg.k = hcfg.k;
  fcfg.n = hcfg.n;
  fcfg.gemm = hcfg.gemm;
  fcfg.comm_tile_m = hcfg.comm_tile_m;
  fcfg.comm = hcfg.comm;
  fcfg.comm_sms = hcfg.comm_sms;
  AgGemm flat(flat_world, fcfg);
  const TimeNs t_flat = flat_world.RunSpmd(
      [&](RankCtx& ctx) -> sim::Coro { co_await flat.Run(ctx); });
  EXPECT_EQ(t_hier, t_flat);
}

TEST(AgGemmHierDegenerate, SingleRankAndOneDevicePerNodeStayBitExact) {
  // N x 1: the ring degenerates to publish-only, the rail feeds the
  // consumer directly.
  MachineSpec nx1 = MachineSpec::H800x8();
  nx1.num_devices = 3;
  nx1.devices_per_node = 1;
  AgGemmHierConfig cfg;
  cfg.m = 32 * nx1.num_devices;
  cfg.k = 16;
  cfg.n = 16;
  cfg.gemm = compute::GemmTiling{8, 16, 8};
  cfg.comm_tile_m = 16;
  const multinode::PayloadReport nx1_report =
      multinode::ValidateAgGemmHier(nx1, cfg);
  EXPECT_TRUE(nx1_report.bit_exact);
  EXPECT_EQ(nx1_report.violations, 0u);
  EXPECT_GT(nx1_report.makespan, 0);

  // 1 x 1: the single-rank ag_gemm.
  const MachineSpec one = MachineSpec::Test(1, /*sms=*/16);
  AgGemmHierConfig solo = cfg;
  solo.m = 32;
  const multinode::PayloadReport solo_report =
      multinode::ValidateAgGemmHier(one, solo);
  EXPECT_TRUE(solo_report.bit_exact);
  EXPECT_EQ(solo_report.violations, 0u);
}

// ---------------------------------------------------------------------- //
// Small-m column split (the ring-chunk floor fix)
// ---------------------------------------------------------------------- //

TEST(AgGemmHierSmallM, PlannerSplitsColumnsAndStaysBitExact) {
  // m_per_rank / comm_tile_m = 2 < kMinRingChunksPerBlock: the planner
  // must split the K width so the ring still pipelines, and the split
  // schedule must stay checker-clean and bit-exact.
  const MachineSpec spec = TwoByEight();
  AgGemmHierConfig cfg;
  cfg.m = 16 * spec.num_devices;
  cfg.k = 16;
  cfg.n = 16;
  cfg.gemm = compute::GemmTiling{8, 16, 8};
  cfg.comm_tile_m = 8;
  {
    World world(spec, ExecMode::kTimingOnly);
    AgGemmHier kernel(world, cfg);
    EXPECT_GT(kernel.col_splits(), 1);
  }
  const multinode::PayloadReport report =
      multinode::ValidateAgGemmHier(spec, cfg);
  EXPECT_TRUE(report.bit_exact);
  EXPECT_EQ(report.violations, 0u);
}

TEST(AgGemmHierSmallM, EndToEndSmallMBeatsComposeViaColumnSplit) {
  // The e2e-scale regression from the ISSUE: qkv projection at a small
  // per-rank m (2048 rows over tp=16 -> 128 rows/rank). The default
  // candidate must trigger the column split and the fused kernel must
  // still beat the AllGather-then-GEMM compose.
  const MachineSpec spec = MachineSpec::H800x16();
  const MlpPartShape shape{2048, 4096, 1024};
  const TuneCandidate seed =
      multinode::DefaultAgGemmHierCandidate(shape, spec.num_devices);
  ASSERT_TRUE(multinode::AgGemmHierFeasible(spec, shape, seed));
  {
    World world(spec, ExecMode::kTimingOnly);
    AgGemmHier kernel(world, multinode::AgGemmHierFromCandidate(shape, seed));
    EXPECT_GT(kernel.col_splits(), 1);
  }
  const TimeNs fused = multinode::SimulateAgGemmHier(spec, shape, seed);
  const TimeNs compose = multinode::SimulateHierAgThenGemm(spec, shape, seed);
  std::printf("small-m fused %.3f ms vs compose %.3f ms\n", fused / 1e6,
              compose / 1e6);
  EXPECT_GT(fused, 0);
  EXPECT_LT(fused, compose);
}

}  // namespace
}  // namespace tilelink::tl
