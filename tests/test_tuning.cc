// Tune-everything pipeline tests.
//
// 1. Successive halving: finds the same argmin as the exhaustive search on
//    a seeded space whose coarse scores preserve the ranking; never returns
//    worse than the seed even under an adversarial coarse evaluator; skips
//    (halves) candidates.
// 2. TunedConfigCache: hits avoid re-searching, the JSON round-trip is
//    lossless, and searches + serialization are deterministic across runs.
// 3. The new per-kernel evaluators and their analytic lower bounds:
//    feasibility, soundness (bound <= simulated time) and coarse/full
//    argmin agreement on small machine specs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "compute/moe_routing.h"
#include "sim/fault.h"
#include "tilelink/builder/comm_bounds.h"
#include "tilelink/builder/kernel_tuning.h"
#include "tilelink/builder/tuned_config_cache.h"
#include "tilelink/multinode/multinode_tuning.h"

namespace tilelink::tl {
namespace {

// ---------------------------------------------------------------------- //
// Successive halving
// ---------------------------------------------------------------------- //

// Deterministic synthetic landscape over the comm-tile/SM axes.
sim::TimeNs ToyCost(const TuneCandidate& c) {
  const int64_t tile_penalty = (c.comm_tile_m - 256) * (c.comm_tile_m - 256);
  const int64_t sm_penalty = (c.comm_sms - 16) * (c.comm_sms - 16) * 50;
  return 100000 + tile_penalty + sm_penalty;
}

TuningSpace ToySpace() {
  TuningSpace space;
  space.CommTileM({64, 128, 256, 512, 1024})
      .CommSms({4, 8, 16, 24, 32, 48});
  return space;
}

TEST(HalvingTest, MatchesExhaustiveArgminOnSeededSpace) {
  TuneCandidate base;
  base.comm = CommResource::kSmPull;  // keep the comm_sms axis live
  const Autotuner tuner;
  int full_evals = 0;
  auto eval = [&full_evals](const TuneCandidate& c) {
    ++full_evals;
    return ToyCost(c);
  };
  // Coarse scores are scaled + offset but order-preserving.
  auto coarse = [](const TuneCandidate& c) { return ToyCost(c) / 4 + 17; };

  const TuneResult exhaustive =
      tuner.Search(ToySpace(), base, [](const TuneCandidate& c) {
        return ToyCost(c);
      });
  full_evals = 0;
  const TuneResult halved =
      tuner.Search(ToySpace(), base, eval, nullptr, coarse);

  EXPECT_EQ(halved.best, exhaustive.best);
  EXPECT_EQ(halved.best_cost, exhaustive.best_cost);
  EXPECT_EQ(halved.best.comm_tile_m, 256);
  EXPECT_EQ(halved.best.comm_sms, 16);
  // The halving round must actually skip full-fidelity work.
  EXPECT_GT(halved.halved, 0);
  EXPECT_EQ(halved.coarse_evals, 31);  // 30 enumerated + out-of-space base
  EXPECT_LT(full_evals, 31);
  EXPECT_EQ(full_evals, static_cast<int>(halved.evaluated.size()));
}

TEST(HalvingTest, NeverWorseThanSeedUnderAdversarialCoarse) {
  TuneCandidate base;
  base.comm = CommResource::kSmPull;
  base.comm_tile_m = 256;
  base.comm_sms = 16;  // the seed IS the landscape argmin
  // Adversarial coarse: inverts the ranking, so the halving round keeps
  // exactly the worst candidates.
  auto coarse = [](const TuneCandidate& c) {
    return sim::TimeNs{10000000} - ToyCost(c);
  };
  const TuneResult result = Autotuner().Search(
      ToySpace(), base, [](const TuneCandidate& c) { return ToyCost(c); },
      nullptr, coarse);
  // The seed is always re-evaluated at full fidelity, so even a perfectly
  // misleading coarse round cannot push the result past it.
  EXPECT_EQ(result.best, base);
  EXPECT_EQ(result.best_cost, ToyCost(base));
}

TEST(HalvingTest, SkipsTinySpaces) {
  TuningSpace space;
  space.CommTileM({64, 128});
  TuneCandidate base;
  base.comm_tile_m = 64;
  int coarse_calls = 0;
  auto coarse = [&coarse_calls](const TuneCandidate& c) {
    ++coarse_calls;
    return ToyCost(c);
  };
  const TuneResult result = Autotuner().Search(
      space, base, [](const TuneCandidate& c) { return ToyCost(c); }, nullptr,
      coarse);
  EXPECT_EQ(coarse_calls, 0);  // below min_coarse_space: plain exhaustive
  EXPECT_EQ(result.coarse_evals, 0);
  EXPECT_EQ(result.evaluated.size(), 2u);
}

// On a real simulated kernel: halving (coarse = collapsed reduction loop)
// must agree with brute force about the argmin's cost on this small,
// well-separated space.
TEST(HalvingTest, AgreesWithBruteForceOnSimulatedAgGemm) {
  const sim::MachineSpec spec = sim::MachineSpec::Test(4, 16);
  const MlpPartShape shape{512, 64, 128};
  TuneCandidate base;
  base.gemm = compute::GemmTiling{32, 32, 16};
  TuningSpace space;
  space.CommTileM({16, 32, 64, 128})
      .CommSms({2, 4, 8})
      .Resources({CommResource::kSmPull, CommResource::kSmPush,
                  CommResource::kDma});
  Autotuner::Options opts;
  opts.min_survivors = 3;
  const TuneResult halved =
      TuneAgGemm(spec, shape, space, base, Autotuner(opts));
  sim::TimeNs brute_best = Autotuner::kInfeasible;
  for (const TuneCandidate& c : space.Enumerate(base)) {
    const sim::TimeNs t = SimulateAgGemm(spec, shape, c);
    if (t != Autotuner::kInfeasible) brute_best = std::min(brute_best, t);
  }
  // Halving may in principle drop the global argmin, but must never lose to
  // it by more than the coarse ranking error on this well-separated space —
  // and the returned cost must be what the returned config simulates to.
  EXPECT_EQ(halved.best_cost, brute_best);
  EXPECT_EQ(SimulateAgGemm(spec, shape, halved.best), halved.best_cost);
  EXPECT_GT(halved.halved, 0);
}

// ---------------------------------------------------------------------- //
// TunedConfigCache
// ---------------------------------------------------------------------- //

TunedEntry DistinctEntry() {
  TunedEntry e;
  e.config.gemm = compute::GemmTiling{64, 96, 32};
  e.config.comm_tile_m = 192;
  e.config.comm_sms = 12;
  e.config.comm = CommResource::kSmPush;
  e.config.order = TileOrder::kNextRankFirst;
  e.config.channels_per_rank = 6;
  e.config.block_q = 48;
  e.config.block_kv = 320;
  e.config.sorted_channel_rows = 768;
  e.config.reduce_block_tokens = 96;
  e.config.reduce_sms = 24;
  e.config.nic_chunk_tiles = 12;
  e.config.staging_depth = 5;
  e.cost = 123456789;
  return e;
}

TEST(TunedConfigCacheTest, HitAvoidsReSearch) {
  TunedConfigCache cache;
  const std::string key =
      TunedConfigCache::Key("ag_gemm", {512, 64, 128},
                            sim::MachineSpec::Test(4, 16));
  int searches = 0;
  auto tune = [&searches] {
    ++searches;
    return DistinctEntry();
  };
  const TunedEntry& first = cache.GetOrTune(key, tune);
  EXPECT_EQ(searches, 1);
  EXPECT_EQ(cache.misses(), 1);
  const TunedEntry& second = cache.GetOrTune(key, tune);
  EXPECT_EQ(searches, 1);  // hit: the search lambda must not run again
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(first, second);
  // A different shape is a different key.
  cache.GetOrTune(TunedConfigCache::Key("ag_gemm", {1024, 64, 128},
                                        sim::MachineSpec::Test(4, 16)),
                  tune);
  EXPECT_EQ(searches, 2);
}

TEST(TunedConfigCacheTest, KeySeparatesKindShapeAndMachine) {
  const sim::MachineSpec a = sim::MachineSpec::Test(4, 16);
  const sim::MachineSpec b = sim::MachineSpec::Test(8, 16);
  EXPECT_NE(TunedConfigCache::Key("ag_gemm", {1, 2, 3}, a),
            TunedConfigCache::Key("gemm_rs", {1, 2, 3}, a));
  EXPECT_NE(TunedConfigCache::Key("ag_gemm", {1, 2, 3}, a),
            TunedConfigCache::Key("ag_gemm", {1, 2, 4}, a));
  EXPECT_NE(TunedConfigCache::Key("ag_gemm", {1, 2, 3}, a),
            TunedConfigCache::Key("ag_gemm", {1, 2, 3}, b));
}

TEST(TunedConfigCacheTest, KeyCarriesCalibrationHash) {
  // Recalibrating the cost model — a MachineSpec constant the shape part of
  // the key never sees — must change the key, so a warm-started cache
  // re-tunes instead of serving stale costs.
  const sim::MachineSpec base = sim::MachineSpec::Test(4, 16);
  sim::MachineSpec recal = base;
  recal.tensor_tflops *= 1.5;
  sim::MachineSpec recal_latency = base;
  recal_latency.collective_setup_latency += sim::Us(5);
  const std::string k = TunedConfigCache::Key("ag_gemm", {1, 2, 3}, base);
  EXPECT_NE(k, TunedConfigCache::Key("ag_gemm", {1, 2, 3}, recal));
  EXPECT_NE(k, TunedConfigCache::Key("ag_gemm", {1, 2, 3}, recal_latency));
  // Same spec -> stable key (and a cache round-trip preserves the entry
  // under it).
  EXPECT_EQ(k, TunedConfigCache::Key("ag_gemm", {1, 2, 3}, base));
  EXPECT_NE(CostCalibrationHash(base), CostCalibrationHash(recal));

  TunedConfigCache cache;
  cache.Put(k, DistinctEntry());
  TunedConfigCache loaded;
  ASSERT_TRUE(loaded.FromJson(cache.ToJson()));
  const TunedEntry* e =
      loaded.Find(TunedConfigCache::Key("ag_gemm", {1, 2, 3}, base));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(*e, DistinctEntry());
  // The recalibrated machine misses: its key differs.
  EXPECT_EQ(loaded.Find(TunedConfigCache::Key("ag_gemm", {1, 2, 3}, recal)),
            nullptr);
  // Node topology is part of the key: 2x8 and 4x4 sixteen-device machines
  // must not share entries (dp_sync tunes on the node layout).
  sim::MachineSpec two_by_eight = base;
  two_by_eight.num_devices = 16;
  two_by_eight.devices_per_node = 8;
  sim::MachineSpec four_by_four = base;
  four_by_four.num_devices = 16;
  four_by_four.devices_per_node = 4;
  EXPECT_NE(TunedConfigCache::Key("dp_sync", {1}, two_by_eight),
            TunedConfigCache::Key("dp_sync", {1}, four_by_four));
}

TEST(TunedConfigCacheTest, PruneDropsStaleCalibrationGenerations) {
  const sim::MachineSpec base = sim::MachineSpec::Test(4, 16);
  sim::MachineSpec recal = base;
  recal.tensor_tflops *= 1.5;
  TunedConfigCache cache;
  cache.Put(TunedConfigCache::Key("ag_gemm", {1, 2, 3}, base),
            DistinctEntry());
  cache.Put(TunedConfigCache::Key("ag_gemm", {1, 2, 3}, recal),
            DistinctEntry());
  ASSERT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.PruneStaleCalibration(CostCalibrationHash(base)), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_NE(cache.Find(TunedConfigCache::Key("ag_gemm", {1, 2, 3}, base)),
            nullptr);
  // Idempotent on a clean cache.
  EXPECT_EQ(cache.PruneStaleCalibration(CostCalibrationHash(base)), 0u);
}

TEST(TunedConfigCacheTest, JsonRoundTripIsLossless) {
  TunedConfigCache cache;
  cache.Put("a/1x2/R4.sm16.nv150", DistinctEntry());
  TunedEntry defaults;  // all-default config round-trips too
  defaults.cost = 42;
  cache.Put("b/8x9x10/R8.sm132.nv150", defaults);

  TunedConfigCache loaded;
  ASSERT_TRUE(loaded.FromJson(cache.ToJson()));
  ASSERT_EQ(loaded.size(), 2u);
  const TunedEntry* a = loaded.Find("a/1x2/R4.sm16.nv150");
  const TunedEntry* b = loaded.Find("b/8x9x10/R8.sm132.nv150");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(*a, DistinctEntry());
  EXPECT_EQ(*b, defaults);
  // Serialization is canonical: a round-trip reproduces the document.
  EXPECT_EQ(loaded.ToJson(), cache.ToJson());
}

TEST(TunedConfigCacheTest, RejectsMalformedJson) {
  TunedConfigCache cache;
  EXPECT_FALSE(cache.FromJson(""));
  EXPECT_FALSE(cache.FromJson("{ \"k\": { \"bm\": } }"));
  EXPECT_FALSE(cache.FromJson("{ \"k\": { \"unknown_field\": 3 } }"));
  EXPECT_FALSE(cache.FromJson("{ \"k\": { \"comm\": \"warp_specialized\" } }"));
}

TEST(TunedConfigCacheTest, JsonRejectsInt64Extremes) {
  TunedConfigCache cache;
  // INT64_MIN's magnitude overflows the positive accumulator: rejected, not
  // wrapped into garbage via `-value` UB.
  EXPECT_FALSE(
      cache.FromJson("{ \"k\": { \"cost_ns\": -9223372036854775808 } }"));
  EXPECT_FALSE(
      cache.FromJson("{ \"k\": { \"cost_ns\": 9223372036854775808 } }"));
  // INT64_MAX itself is representable and accepted.
  ASSERT_TRUE(
      cache.FromJson("{ \"k\": { \"cost_ns\": 9223372036854775807 } }"));
  const TunedEntry* e = cache.Find("k");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->cost, std::numeric_limits<int64_t>::max());
}

TEST(TunedConfigCacheTest, JsonRejectsTrailingGarbage) {
  TunedConfigCache cache;
  EXPECT_FALSE(cache.FromJson("{} x"));
  EXPECT_FALSE(cache.FromJson("{}{}"));
  EXPECT_FALSE(cache.FromJson("{ \"k\": { \"bm\": 64 } } trailing"));
  // Trailing whitespace is not garbage.
  EXPECT_TRUE(cache.FromJson("{}  \n"));
}

TEST(TunedConfigCacheTest, JsonFailureLeavesCacheUntouched) {
  TunedConfigCache cache;
  cache.Put("keep", DistinctEntry());
  // The first entry parses, the document then goes bad: all-or-nothing
  // means neither "keep" is clobbered nor "new" added.
  EXPECT_FALSE(cache.FromJson(
      "{ \"keep\": { \"bm\": 1 }, \"new\": { \"bogus\": 2 } }"));
  ASSERT_EQ(cache.size(), 1u);
  const TunedEntry* e = cache.Find("keep");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(*e, DistinctEntry());
}

TEST(TunedConfigCacheTest, JsonDuplicateKeysLastWins) {
  TunedConfigCache cache;
  ASSERT_TRUE(cache.FromJson(
      "{ \"k\": { \"staging_depth\": 2 }, \"k\": { \"staging_depth\": 5 } "
      "}"));
  ASSERT_EQ(cache.size(), 1u);
  const TunedEntry* e = cache.Find("k");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->config.staging_depth, 5);
  // Repeated fields within one entry object are last-wins too.
  ASSERT_TRUE(cache.FromJson(
      "{ \"f\": { \"staging_depth\": 2, \"staging_depth\": 7 } }"));
  EXPECT_EQ(cache.Find("f")->config.staging_depth, 7);
}

TEST(TunedConfigCacheTest, CalibrationHashNormalizesSignedZero) {
  sim::MachineSpec a = sim::MachineSpec::H800x8();
  sim::MachineSpec b = a;
  a.nic_gbps = 0.0;
  b.nic_gbps = -0.0;
  // Numerically identical calibrations must share one cache generation.
  EXPECT_EQ(CostCalibrationHash(a), CostCalibrationHash(b));
}

TEST(TunedConfigCacheTest, CalibrationHashRejectsNaN) {
  sim::MachineSpec spec = sim::MachineSpec::H800x8();
  spec.dma_efficiency = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(CostCalibrationHash(spec), Error);
}

TEST(TunedConfigCacheTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/tuned_cache_test.json";
  {
    TunedConfigCache cache;
    cache.Put("k/1/R4.sm16.nv150", DistinctEntry());
    ASSERT_TRUE(cache.SaveFile(path));
  }
  TunedConfigCache loaded;
  ASSERT_TRUE(loaded.LoadFile(path));
  const TunedEntry* e = loaded.Find("k/1/R4.sm16.nv150");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(*e, DistinctEntry());
  std::remove(path.c_str());
  TunedConfigCache missing;
  EXPECT_FALSE(missing.LoadFile(path));
}

// The full pipeline is deterministic: searching the same space twice yields
// identical results, and caches filled by both serialize identically.
TEST(TunedConfigCacheTest, SearchAndSerializationDeterministic) {
  const sim::MachineSpec spec = sim::MachineSpec::Test(4, 16);
  const MlpPartShape shape{512, 64, 128};
  TuneCandidate base;
  base.gemm = compute::GemmTiling{32, 32, 16};
  TuningSpace space;
  space.CommTileM({16, 32, 64})
      .CommSms({2, 4, 8})
      .Resources({CommResource::kSmPull, CommResource::kDma});
  const std::string key = TunedConfigCache::Key("ag_gemm", {512, 64, 128},
                                                spec);
  std::string jsons[2];
  for (std::string& json : jsons) {
    TunedConfigCache cache;
    const TunedEntry& e = cache.GetOrTune(key, [&] {
      const TuneResult r = TuneAgGemm(spec, shape, space, base);
      return TunedEntry{r.best, r.best_cost};
    });
    EXPECT_GT(e.cost, 0);
    json = cache.ToJson();
  }
  EXPECT_EQ(jsons[0], jsons[1]);
}

// ---------------------------------------------------------------------- //
// New evaluators and bounds
// ---------------------------------------------------------------------- //

TEST(KernelTuningTest, AttentionBoundsAreSound) {
  const sim::MachineSpec spec = sim::MachineSpec::Test(4, 16);
  const AttnShape shape{4, 256, 32};
  TuneCandidate base;
  TuningSpace space;
  space.AttnBlocks({{16, 16}, {16, 32}, {32, 32}, {32, 64}});
  for (const TuneCandidate& c : space.Enumerate(base)) {
    const sim::TimeNs t = SimulateAgAttention(spec, shape, c);
    ASSERT_NE(t, Autotuner::kInfeasible) << c.Describe();
    EXPECT_LE(AgAttentionLowerBound(spec, shape, c), t) << c.Describe();
  }
  const FlashShape flash{4, 128, 256, 32};
  for (const TuneCandidate& c : space.Enumerate(base)) {
    const sim::TimeNs t = SimulateFlashCore(spec, flash, c);
    ASSERT_NE(t, Autotuner::kInfeasible) << c.Describe();
    EXPECT_LE(FlashCoreLowerBound(spec, flash, c), t) << c.Describe();
  }
}

TEST(KernelTuningTest, MoeBoundsAreSound) {
  const sim::MachineSpec spec = sim::MachineSpec::Test(2, 16);
  const MoeShape shape{128, 32, 32, 4, 2};
  Rng rng(7);
  const compute::MoeRouting routing =
      compute::RandomRouting(shape.m, shape.num_experts, shape.topk, rng);
  TuneCandidate base;
  base.gemm = compute::GemmTiling{16, 16, 8};
  TuningSpace space;
  space.CommTileM({16, 32, 64})
      .CommSms({2, 4})
      .Resources({CommResource::kSmPull, CommResource::kSmPush,
                  CommResource::kDma})
      .SortedChannelRows({32, 64})
      .ReduceBlockTokens({8, 16})
      .ReduceSms({2, 4});
  int part1_feasible = 0, part2_feasible = 0;
  for (const TuneCandidate& c : space.Enumerate(base)) {
    const sim::TimeNs t1 = SimulateAgMoe(spec, shape, routing, c);
    if (t1 != Autotuner::kInfeasible) {
      ++part1_feasible;
      EXPECT_LE(AgMoeLowerBound(spec, shape, c), t1) << c.Describe();
    }
    const sim::TimeNs t2 = SimulateMoeRs(spec, shape, routing, c);
    if (t2 != Autotuner::kInfeasible) {
      ++part2_feasible;
      EXPECT_LE(MoeRsLowerBound(spec, shape, c), t2) << c.Describe();
    }
  }
  EXPECT_GT(part1_feasible, 0);
  EXPECT_GT(part2_feasible, 0);
}

// Chaining both tuned MoE parts in one world composes: the layer makespan
// is at least each part alone and at most their sum plus slack.
TEST(KernelTuningTest, MoeLayerComposition) {
  const sim::MachineSpec spec = sim::MachineSpec::Test(2, 16);
  const MoeShape shape{128, 32, 32, 4, 2};
  Rng rng(7);
  const compute::MoeRouting routing =
      compute::RandomRouting(shape.m, shape.num_experts, shape.topk, rng);
  TuneCandidate part1;
  part1.gemm = compute::GemmTiling{16, 16, 8};
  part1.comm_tile_m = 16;
  part1.comm = CommResource::kSmPull;
  part1.comm_sms = 2;
  TuneCandidate part2 = part1;
  part2.comm = CommResource::kSmPush;
  part2.comm_tile_m = 16;
  part2.reduce_block_tokens = 8;
  part2.sorted_channel_rows = 64;
  part2.reduce_sms = 2;
  const sim::TimeNs t1 = SimulateAgMoe(spec, shape, routing, part1);
  const sim::TimeNs t2 = SimulateMoeRs(spec, shape, routing, part2);
  const sim::TimeNs layer = SimulateMoeLayer(spec, shape, routing, part1,
                                             part2);
  ASSERT_NE(t1, Autotuner::kInfeasible);
  ASSERT_NE(t2, Autotuner::kInfeasible);
  ASSERT_NE(layer, Autotuner::kInfeasible);
  EXPECT_GE(layer, std::max(t1, t2));
  EXPECT_LE(layer, t1 + t2);
}

// ---------------------------------------------------------------------- //
// Laddered multi-fidelity search
// ---------------------------------------------------------------------- //

// The determinism guarantee is bitwise: not just the argmin, but the entire
// TuneResult — evaluation order, pruned/halved/infeasible tallies, the
// ladder's per-rung accounting — must be what the serial search produces,
// for every thread count.
void ExpectIdenticalResults(const TuneResult& a, const TuneResult& b) {
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.best_cost, b.best_cost);
  ASSERT_EQ(a.evaluated.size(), b.evaluated.size());
  for (size_t i = 0; i < a.evaluated.size(); ++i) {
    EXPECT_EQ(a.evaluated[i].first, b.evaluated[i].first) << i;
    EXPECT_EQ(a.evaluated[i].second, b.evaluated[i].second) << i;
  }
  EXPECT_EQ(a.pruned, b.pruned);
  EXPECT_EQ(a.infeasible, b.infeasible);
  EXPECT_EQ(a.halved, b.halved);
  EXPECT_EQ(a.coarse_evals, b.coarse_evals);
  EXPECT_EQ(a.seed_cost, b.seed_cost);
  EXPECT_EQ(a.evaluated_per_rung, b.evaluated_per_rung);
  EXPECT_EQ(a.promoted_per_rung, b.promoted_per_rung);
}

// Order-preserving toy fidelity: coarse rungs see the landscape scaled by
// 1/denom plus a fixed offset (the per-tile costs that do not shrink).
Autotuner::FidelityEvalFn ToyFidelity() {
  return [](const TuneCandidate& c, int denom) {
    if (denom == 1) return ToyCost(c);
    return ToyCost(c) / denom + 977;
  };
}

TEST(LadderTest, MatchesExhaustiveArgminWithFewerFullEvals) {
  TuneCandidate base;
  base.comm = CommResource::kSmPull;  // keep the comm_sms axis live
  const Autotuner tuner;
  const TuneResult exhaustive = tuner.Search(
      ToySpace(), base, [](const TuneCandidate& c) { return ToyCost(c); });
  const TuneResult ladder =
      tuner.SearchLaddered(ToySpace(), base, ToyFidelity());

  EXPECT_EQ(ladder.best, exhaustive.best);
  EXPECT_EQ(ladder.best_cost, exhaustive.best_cost);
  EXPECT_EQ(ladder.seed_cost, ToyCost(base));
  // Rung accounting (satellite of the serving PR): one slot per rung, the
  // final rung's promotion is the argmin, and every coarse rung must both
  // evaluate and cut.
  ASSERT_EQ(ladder.evaluated_per_rung.size(),
            tuner.options().ladder_rungs.size());
  ASSERT_EQ(ladder.promoted_per_rung.size(),
            tuner.options().ladder_rungs.size());
  EXPECT_EQ(ladder.promoted_per_rung.back(), 1);
  for (std::size_t r = 0; r + 1 < ladder.evaluated_per_rung.size(); ++r) {
    EXPECT_GT(ladder.evaluated_per_rung[r], 0) << r;
    // The geometric taper only narrows rung over rung.
    EXPECT_LE(ladder.promoted_per_rung[r + 1], ladder.promoted_per_rung[r])
        << r;
    EXPECT_LE(ladder.promoted_per_rung[r], ladder.evaluated_per_rung[r]) << r;
  }
  EXPECT_GT(ladder.coarse_evals, 0);
  // The point of the ladder: far fewer full-fidelity evaluations.
  EXPECT_LT(ladder.evaluated.size(), exhaustive.evaluated.size());
}

TEST(LadderTest, NeverWorseThanSeedUnderAdversarialFidelity) {
  TuneCandidate base;
  base.comm = CommResource::kSmPull;
  base.comm_tile_m = 256;
  base.comm_sms = 16;  // the seed IS the landscape argmin
  // Adversarial coarse rungs invert the ranking, so promotion keeps exactly
  // the worst candidates — but the seed anchors at full fidelity first.
  auto fidelity = [](const TuneCandidate& c, int denom) {
    if (denom == 1) return ToyCost(c);
    return sim::TimeNs{10000000} - ToyCost(c);
  };
  const TuneResult r =
      Autotuner().SearchLaddered(ToySpace(), base, fidelity);
  EXPECT_EQ(r.best, base);
  EXPECT_EQ(r.best_cost, ToyCost(base));
  EXPECT_EQ(r.seed_cost, ToyCost(base));
}

TEST(LadderTest, SkipsTinySpaces) {
  TuningSpace space;
  space.CommTileM({64, 128});  // below min_ladder_space
  TuneCandidate base;
  base.comm_tile_m = 64;
  int coarse_calls = 0;
  const TuneResult r = Autotuner().SearchLaddered(
      space, base, [&coarse_calls](const TuneCandidate& c, int denom) {
        if (denom != 1) ++coarse_calls;
        return ToyCost(c);
      });
  EXPECT_EQ(coarse_calls, 0);  // plain search: no reduced-fidelity rungs
  EXPECT_EQ(r.coarse_evals, 0);
  EXPECT_TRUE(r.evaluated_per_rung.empty());
  EXPECT_EQ(r.evaluated.size(), 2u);
}

TEST(LadderTest, SeedFloorGateDropsHopelessCandidates) {
  TuneCandidate base;
  base.comm = CommResource::kSmPull;
  base.comm_tile_m = 256;
  base.comm_sms = 16;
  // An exact bound: every non-argmin candidate's floor meets the seed's
  // anchored cost, so the whole space is dropped before any rung runs.
  const TuneResult r = Autotuner().SearchLaddered(
      ToySpace(), base, ToyFidelity(),
      [](const TuneCandidate& c) { return ToyCost(c); });
  EXPECT_EQ(r.best, base);
  EXPECT_GT(r.pruned, 0);
  // Only the seed itself rides through the rungs (it is exempt from its
  // own floor): at most one coarse score per coarse rung.
  EXPECT_LE(r.coarse_evals,
            static_cast<int>(Autotuner().options().ladder_rungs.size()) - 1);
}

// Every kernel family's laddered search must return a config that (a)
// simulates to exactly the reported cost and (b) never loses to the seed —
// whether the shape is big enough for the ladder or falls back to the
// classic halved search.
TEST(LadderTest, FullFidelityArgminNeverWorseThanSeedOnKernelSpaces) {
  const sim::MachineSpec spec = sim::MachineSpec::Test(4, 16);
  {
    // k large enough for the 1/16 rung to shrink (granule 64).
    const MlpPartShape shape{512, 1024, 128};
    TuneCandidate base;
    base.gemm = compute::GemmTiling{32, 32, 16};
    TuningSpace space;
    space.CommTileM({16, 32, 64, 128})
        .CommSms({2, 4, 8})
        .Resources({CommResource::kSmPull, CommResource::kSmPush,
                    CommResource::kDma});
    const TuneResult ag = TuneAgGemmLaddered(spec, shape, space, base);
    EXPECT_EQ(SimulateAgGemm(spec, shape, ag.best), ag.best_cost);
    EXPECT_LE(ag.best_cost, SimulateAgGemm(spec, shape, base));
    EXPECT_GT(ag.coarse_evals, 0);  // the ladder actually engaged
    ASSERT_FALSE(ag.evaluated_per_rung.empty());
    EXPECT_LT(ag.evaluated_per_rung.back(),
              static_cast<int>(space.Enumerate(base).size()));
    const MlpPartShape rs_shape{512, 64, 1024};  // GEMM+RS shrinks n
    const TuneResult rs = TuneGemmRsLaddered(spec, rs_shape, space, base);
    EXPECT_EQ(SimulateGemmRs(spec, rs_shape, rs.best), rs.best_cost);
    EXPECT_LE(rs.best_cost, SimulateGemmRs(spec, rs_shape, base));
  }
  {
    const AttnShape shape{4, 256, 32};
    TuneCandidate base;
    base.block_q = 16;
    base.block_kv = 16;
    TuningSpace space;
    space.AttnBlocks({{16, 16}, {16, 32}, {32, 32}, {32, 64}});
    const TuneResult attn = TuneAgAttentionLaddered(spec, shape, space, base);
    EXPECT_EQ(SimulateAgAttention(spec, shape, attn.best), attn.best_cost);
    EXPECT_LE(attn.best_cost, SimulateAgAttention(spec, shape, base));
    const FlashShape flash{4, 128, 256, 32};
    const TuneResult fl = TuneFlashCoreLaddered(spec, flash, space, base);
    EXPECT_EQ(SimulateFlashCore(spec, flash, fl.best), fl.best_cost);
    EXPECT_LE(fl.best_cost, SimulateFlashCore(spec, flash, base));
  }
  {
    const sim::MachineSpec moe_spec = sim::MachineSpec::Test(2, 16);
    const MoeShape shape{128, 32, 32, 4, 2};
    Rng rng(7);
    const compute::MoeRouting routing =
        compute::RandomRouting(shape.m, shape.num_experts, shape.topk, rng);
    TuneCandidate base;
    base.gemm = compute::GemmTiling{16, 16, 8};
    base.comm_tile_m = 16;
    base.comm_sms = 2;
    base.comm = CommResource::kSmPull;
    base.sorted_channel_rows = 32;
    base.reduce_block_tokens = 8;
    base.reduce_sms = 2;
    TuningSpace space;
    space.CommTileM({16, 32, 64})
        .CommSms({2, 4})
        .Resources({CommResource::kSmPull, CommResource::kSmPush,
                    CommResource::kDma})
        .SortedChannelRows({32, 64})
        .ReduceBlockTokens({8, 16})
        .ReduceSms({2, 4});
    const TuneResult p1 =
        TuneAgMoeLaddered(moe_spec, shape, routing, space, base);
    EXPECT_EQ(SimulateAgMoe(moe_spec, shape, routing, p1.best), p1.best_cost);
    EXPECT_LE(p1.best_cost, SimulateAgMoe(moe_spec, shape, routing, base));
    const TuneResult p2 =
        TuneMoeRsLaddered(moe_spec, shape, routing, space, base);
    EXPECT_EQ(SimulateMoeRs(moe_spec, shape, routing, p2.best), p2.best_cost);
    EXPECT_LE(p2.best_cost, SimulateMoeRs(moe_spec, shape, routing, base));
  }
}

TEST(LadderTest, ThreadCountBitwiseInvariant) {
  // The full TuneResult — including the new per-rung accounting — must be
  // identical at 1 and 8 threads, on the toy landscape and on a real
  // laddered kernel search.
  TuneCandidate base;
  base.comm = CommResource::kSmPull;
  const TuneResult serial =
      Autotuner().SearchLaddered(ToySpace(), base, ToyFidelity());
  Autotuner::Options opts;
  for (int threads : {2, 8}) {
    opts.threads = threads;
    ExpectIdenticalResults(
        serial, Autotuner(opts).SearchLaddered(ToySpace(), base,
                                               ToyFidelity()));
  }
  const sim::MachineSpec spec = sim::MachineSpec::Test(4, 16);
  const MlpPartShape shape{512, 1024, 128};
  TuneCandidate seed;
  seed.gemm = compute::GemmTiling{32, 32, 16};
  TuningSpace space;
  space.CommTileM({16, 32, 64, 128})
      .CommSms({2, 4, 8})
      .Resources({CommResource::kSmPull, CommResource::kSmPush,
                  CommResource::kDma});
  opts.threads = 8;
  ExpectIdenticalResults(
      TuneAgGemmLaddered(spec, shape, space, seed),
      TuneAgGemmLaddered(spec, shape, space, seed, Autotuner(opts)));
}

// ---------------------------------------------------------------------- //
// Parallel search determinism
// ---------------------------------------------------------------------- //

Autotuner ThreadedTuner(int threads) {
  Autotuner::Options opts;
  opts.threads = threads;
  return Autotuner(opts);
}

TEST(ParallelSearchTest, PruningDeterministicOnToyLandscape) {
  TuneCandidate base;
  base.comm = CommResource::kSmPull;
  auto eval = [](const TuneCandidate& c) { return ToyCost(c); };
  // Exact bound: the most aggressive sound bound possible, so speculative
  // pruning fires constantly across workers.
  auto bound = [](const TuneCandidate& c) { return ToyCost(c); };
  const TuneResult serial = Autotuner().Search(ToySpace(), base, eval, bound);
  EXPECT_GT(serial.pruned, 0);
  for (int threads : {2, 3, 8, 16}) {
    ExpectIdenticalResults(
        serial, ThreadedTuner(threads).Search(ToySpace(), base, eval, bound));
  }
}

TEST(ParallelSearchTest, DeterministicEvenUnderUnsoundBound) {
  // An overstating (unsound) bound makes workers speculatively skip
  // candidates the serial order would have evaluated; the replay must
  // re-evaluate them inline so the result still matches serial bitwise.
  TuneCandidate base;
  base.comm = CommResource::kSmPull;
  auto eval = [](const TuneCandidate& c) { return ToyCost(c); };
  auto unsound = [](const TuneCandidate& c) {
    return ToyCost(c) + 500000;  // wildly overstated
  };
  const TuneResult serial =
      Autotuner().Search(ToySpace(), base, eval, unsound);
  for (int threads : {2, 8}) {
    ExpectIdenticalResults(
        serial,
        ThreadedTuner(threads).Search(ToySpace(), base, eval, unsound));
  }
}

TEST(ParallelSearchTest, DeterministicOnEveryKernelTuningSpace) {
  const Autotuner parallel = ThreadedTuner(8);
  const sim::MachineSpec spec = sim::MachineSpec::Test(4, 16);
  {
    const MlpPartShape shape{512, 64, 128};
    TuneCandidate base;
    base.gemm = compute::GemmTiling{32, 32, 16};
    TuningSpace space;
    space.CommTileM({16, 32, 64, 128})
        .CommSms({2, 4, 8})
        .Resources({CommResource::kSmPull, CommResource::kSmPush,
                    CommResource::kDma});
    ExpectIdenticalResults(TuneAgGemm(spec, shape, space, base),
                           TuneAgGemm(spec, shape, space, base, parallel));
    ExpectIdenticalResults(TuneGemmRs(spec, shape, space, base),
                           TuneGemmRs(spec, shape, space, base, parallel));
  }
  {
    const AttnShape shape{4, 256, 32};
    // The seed gets a full-fidelity run, so it must fit the short sequence:
    // pin it to the smallest block pair in the space.
    TuneCandidate base;
    base.block_q = 16;
    base.block_kv = 16;
    TuningSpace space;
    space.AttnBlocks({{16, 16}, {16, 32}, {32, 32}, {32, 64}});
    ExpectIdenticalResults(
        TuneAgAttention(spec, shape, space, base),
        TuneAgAttention(spec, shape, space, base, parallel));
    const FlashShape flash{4, 128, 256, 32};
    ExpectIdenticalResults(
        TuneFlashCore(spec, flash, space, base),
        TuneFlashCore(spec, flash, space, base, parallel));
  }
  {
    const sim::MachineSpec moe_spec = sim::MachineSpec::Test(2, 16);
    const MoeShape shape{128, 32, 32, 4, 2};
    Rng rng(7);
    const compute::MoeRouting routing =
        compute::RandomRouting(shape.m, shape.num_experts, shape.topk, rng);
    TuneCandidate base;
    base.gemm = compute::GemmTiling{16, 16, 8};
    // Keep the full-fidelity seed inside the space: the defaults (512-row
    // channels etc.) overrun this tiny MoE shape.
    base.comm_tile_m = 16;
    base.comm_sms = 2;
    base.comm = CommResource::kSmPull;
    base.sorted_channel_rows = 32;
    base.reduce_block_tokens = 8;
    base.reduce_sms = 2;
    TuningSpace space;
    space.CommTileM({16, 32, 64})
        .CommSms({2, 4})
        .Resources({CommResource::kSmPull, CommResource::kSmPush,
                    CommResource::kDma})
        .SortedChannelRows({32, 64})
        .ReduceBlockTokens({8, 16})
        .ReduceSms({2, 4});
    ExpectIdenticalResults(
        TuneAgMoe(moe_spec, shape, routing, space, base),
        TuneAgMoe(moe_spec, shape, routing, space, base, parallel));
    ExpectIdenticalResults(
        TuneMoeRs(moe_spec, shape, routing, space, base),
        TuneMoeRs(moe_spec, shape, routing, space, base, parallel));
  }
}

TEST(ParallelSearchTest, DeterministicOnMultiNodeSpaces) {
  const Autotuner parallel = ThreadedTuner(8);
  const sim::MachineSpec spec = sim::MachineSpec::H800x16();
  const MlpPartShape shape{8192, 128, 1024};
  const TuneCandidate seed = multinode::DefaultGemmHierRsCandidate(shape, 16);
  ExpectIdenticalResults(
      multinode::TuneGemmHierRs(spec, shape, tl::TuningSpace::GemmHierRs(),
                                seed),
      multinode::TuneGemmHierRs(spec, shape, tl::TuningSpace::GemmHierRs(),
                                seed, parallel));
  const uint64_t grad_bytes = 1ull << 26;
  ExpectIdenticalResults(
      multinode::TuneDpSync(spec, grad_bytes, tl::TuningSpace::MultiNode(),
                            multinode::DefaultDpSyncCandidate()),
      multinode::TuneDpSync(spec, grad_bytes, tl::TuningSpace::MultiNode(),
                            multinode::DefaultDpSyncCandidate(), parallel));
}

TEST(ParallelSearchTest, DeterministicUnderSharedFaultPlan) {
  // Fault injection must not break the bitwise parallel-search guarantee:
  // every worker's World shares one read-only FaultPlan (per-edge ordinal
  // counters live per-Network, so the retry/failover timelines are pure
  // functions of the candidate), and the full TuneResult at 8 threads must
  // match serial exactly.
  sim::MachineSpec spec = sim::MachineSpec::H800x8();
  spec.num_devices = 4;
  spec.devices_per_node = 2;
  spec.nic_rails = 2;
  sim::FaultPlan plan;
  plan.RandomTransients("nic", /*seed=*/11, /*drop_prob=*/0.1,
                        /*spike_prob=*/0.1, /*spike_mult=*/2.0);
  plan.DegradeRail("nic", /*port=*/-1, /*rail=*/1, /*at=*/sim::Us(30),
                   /*fraction=*/0.25);
  auto eval = [&](const TuneCandidate& c) {
    multinode::HierConfig cfg = multinode::HierConfig::FromCandidate(c);
    rt::World world(spec, rt::ExecMode::kTimingOnly);
    world.set_fault_plan(&plan);
    multinode::HierAllGather ag(world, 12, 64 << 10, cfg);
    return world.RunSpmd([&](rt::RankCtx& ctx) -> sim::Coro {
      co_await ag.Run(ctx);
    });
  };
  const TuneCandidate seed = multinode::DefaultDpSyncCandidate();
  const TuneResult serial =
      Autotuner().Search(TuningSpace::MultiNode(), seed, eval);
  ExpectIdenticalResults(
      serial, ThreadedTuner(8).Search(TuningSpace::MultiNode(), seed, eval));
}

TEST(ParallelSearchTest, VerboseUnderThreadsIsSerializedAndComplete) {
  // Smoke the serialized line sink: a verbose parallel search must not
  // interleave/crash, and still returns the serial result.
  TuneCandidate base;
  base.comm = CommResource::kSmPull;
  auto eval = [](const TuneCandidate& c) { return ToyCost(c); };
  Autotuner::Options opts;
  opts.threads = 8;
  opts.verbose = true;
  const TuneResult serial = Autotuner().Search(ToySpace(), base, eval);
  ExpectIdenticalResults(serial,
                         Autotuner(opts).Search(ToySpace(), base, eval));
}

// ---------------------------------------------------------------------- //
// Concurrent cache access
// ---------------------------------------------------------------------- //

TEST(TunedConfigCacheTest, ConcurrentGetOrTuneStress) {
  TunedConfigCache cache;
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  constexpr int kKeys = 16;
  std::atomic<int> tunes{0};
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&cache, &tunes, t] {
      for (int i = 0; i < kIters; ++i) {
        const std::string key = "k/" + std::to_string((i * 7 + t) % kKeys);
        const TunedEntry e = cache.GetOrTune(key, [&tunes] {
          ++tunes;
          return DistinctEntry();
        });
        EXPECT_EQ(e, DistinctEntry());
        if (i % 32 == 0) {
          // Mix in readers so serialization races with get/put.
          (void)cache.ToJson();
          (void)cache.size();
        }
      }
    });
  }
  for (std::thread& th : pool) th.join();
  // Racing misses may each run the (deterministic) search, but the stored
  // entries and the final cache are exactly the serial ones.
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kKeys));
  EXPECT_GE(tunes.load(), kKeys);
  EXPECT_EQ(cache.hits() + cache.misses(), kThreads * kIters);
  for (int k = 0; k < kKeys; ++k) {
    const TunedEntry* e = cache.Find("k/" + std::to_string(k));
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(*e, DistinctEntry());
  }
}

// ---------------------------------------------------------------------- //
// Communication-optimal floors
// ---------------------------------------------------------------------- //

TEST(CommBoundsTest, MlpFloorsAreSoundByBruteForce) {
  const sim::MachineSpec spec = sim::MachineSpec::Test(4, 16);
  TuneCandidate base;
  base.gemm = compute::GemmTiling{32, 32, 16};
  TuningSpace space;
  space.CommTileM({16, 32, 64, 128})
      .CommSms({2, 4, 8})
      .Resources({CommResource::kSmPull, CommResource::kSmPush,
                  CommResource::kDma});
  for (const MlpPartShape& shape :
       {MlpPartShape{512, 64, 128}, MlpPartShape{1024, 128, 64}}) {
    int feasible = 0;
    for (const TuneCandidate& c : space.Enumerate(base)) {
      const sim::TimeNs ag = SimulateAgGemm(spec, shape, c);
      if (ag != Autotuner::kInfeasible) {
        ++feasible;
        EXPECT_LE(AgGemmLowerBound(spec, shape, c), ag) << c.Describe();
        // Composition: the floor only ever raises the overlap bound.
        EXPECT_GE(AgGemmLowerBound(spec, shape, c),
                  AgGemmOverlapBound(spec, shape, c));
      }
      const sim::TimeNs rs = SimulateGemmRs(spec, shape, c);
      if (rs != Autotuner::kInfeasible) {
        EXPECT_LE(GemmRsLowerBound(spec, shape, c), rs) << c.Describe();
        EXPECT_GE(GemmRsLowerBound(spec, shape, c),
                  GemmRsOverlapBound(spec, shape, c));
      }
    }
    EXPECT_GT(feasible, 0);
  }
}

TEST(CommBoundsTest, RoutedMoeFloorsAreSoundByBruteForce) {
  const sim::MachineSpec spec = sim::MachineSpec::Test(2, 16);
  const MoeShape shape{128, 32, 32, 4, 2};
  // Deliberately skewed routing (small m, few experts): the fragmentation
  // floor has to stay under the simulated group GEMM even when several
  // experts own ragged partial tiles.
  Rng rng(7);
  const compute::MoeRouting routing =
      compute::RandomRouting(shape.m, shape.num_experts, shape.topk, rng);
  TuneCandidate base;
  base.gemm = compute::GemmTiling{16, 16, 8};
  TuningSpace space;
  space.CommTileM({16, 32, 64})
      .CommSms({2, 4})
      .Resources({CommResource::kSmPull, CommResource::kSmPush,
                  CommResource::kDma})
      .SortedChannelRows({32, 64})
      .ReduceBlockTokens({8, 16})
      .ReduceSms({2, 4});
  int part1_feasible = 0, part2_feasible = 0;
  for (const TuneCandidate& c : space.Enumerate(base)) {
    const sim::TimeNs t1 = SimulateAgMoe(spec, shape, routing, c);
    if (t1 != Autotuner::kInfeasible) {
      ++part1_feasible;
      EXPECT_LE(AgMoeRoutedLowerBound(spec, shape, routing, c), t1)
          << c.Describe();
      EXPECT_GE(AgMoeRoutedLowerBound(spec, shape, routing, c),
                AgMoeLowerBound(spec, shape, c));
    }
    const sim::TimeNs t2 = SimulateMoeRs(spec, shape, routing, c);
    if (t2 != Autotuner::kInfeasible) {
      ++part2_feasible;
      EXPECT_LE(MoeRsRoutedLowerBound(spec, shape, routing, c), t2)
          << c.Describe();
      EXPECT_GE(MoeRsRoutedLowerBound(spec, shape, routing, c),
                MoeRsLowerBound(spec, shape, c));
    }
  }
  EXPECT_GT(part1_feasible, 0);
  EXPECT_GT(part2_feasible, 0);
}

TEST(CommBoundsTest, HierRsFloorIsSoundByBruteForce) {
  const sim::MachineSpec spec = sim::MachineSpec::H800x16();
  const MlpPartShape shape{8192, 128, 1024};
  const TuneCandidate seed = multinode::DefaultGemmHierRsCandidate(shape, 16);
  int feasible = 0;
  for (const TuneCandidate& c :
       tl::TuningSpace::GemmHierRs().Enumerate(seed)) {
    const sim::TimeNs t = multinode::SimulateGemmHierRs(spec, shape, c);
    if (t == Autotuner::kInfeasible) continue;
    ++feasible;
    EXPECT_LE(multinode::GemmHierRsLowerBound(spec, shape, c), t)
        << c.Describe();
    EXPECT_LE(GemmHierRsCommFloor(spec, shape, c), t) << c.Describe();
  }
  EXPECT_GT(feasible, 0);
}

TEST(CommBoundsTest, PortBytesMatchHandComputedVolumes) {
  // 4 ranks, shards of 4/4/4/4 rows of 8 columns, bf16 (2 bytes): each
  // rank receives 12 remote rows and sends its 4 rows to 3 peers.
  const TileIntervals even = LinearTileMapping(16, 4, 4);
  const PortBytes ag = AllGatherPortBytes(even, 8 * 2);
  EXPECT_EQ(ag.ingress, 12u * 16u);
  EXPECT_EQ(ag.egress, 4u * 3u * 16u);
  // Reduce-scatter information floor: one accumulated copy of the largest
  // shard in; contributions to all remote rows out.
  const PortBytes rs = ReduceScatterPortBytes(even, 8 * 2);
  EXPECT_EQ(rs.ingress, 4u * 16u);
  EXPECT_EQ(rs.egress, 12u * 16u);
  // Ragged shards sharpen the floor: 6/6/4/0 rows on 4 ranks.
  const TileIntervals ragged = IntervalsFromExtents({6, 6, 4, 0});
  const PortBytes ragged_ag = AllGatherPortBytes(ragged, 2);
  EXPECT_EQ(ragged_ag.ingress, 16u * 2u);     // the empty rank pulls all 16
  EXPECT_EQ(ragged_ag.egress, 6u * 3u * 2u);  // a 6-row owner feeds 3 peers
  // Single rank: nothing crosses the fabric.
  const PortBytes solo = AllGatherPortBytes(LinearTileMapping(16, 1), 2);
  EXPECT_EQ(solo.ingress, 0u);
  EXPECT_EQ(solo.egress, 0u);
}

TEST(KernelTuningTest, TuneFlashCorePicksLargeBlocks) {
  const sim::MachineSpec spec = sim::MachineSpec::Test(1, 16);
  const FlashShape shape{8, 512, 512, 64};
  TuneCandidate base;
  base.block_q = 16;
  base.block_kv = 16;  // deliberately poor seed
  TuningSpace space;
  space.AttnBlocks({{16, 16}, {32, 32}, {64, 64}, {128, 128}});
  const TuneResult r = TuneFlashCore(spec, shape, space, base);
  // Larger flash tiles keep the MMA pipeline fuller (GemmEfficiency is
  // monotone in tile area at these sizes): the tuner must escape the seed.
  EXPECT_LT(r.best_cost, SimulateFlashCore(spec, shape, base));
  EXPECT_GE(r.best.block_q * r.best.block_kv, 64 * 64);
}

}  // namespace
}  // namespace tilelink::tl
