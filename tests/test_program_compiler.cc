// Tests for the TileLink compiler: builder structure, the §4.2 memory-
// consistency verifier (accept + reject), listing codegen, and the
// fault-injection path — the deliberately-unsafe reordering pass must
// produce runtime consistency violations that the checker catches, while
// the safe compilation of the same program is clean.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "runtime/world.h"
#include "tensor/tensor_ops.h"
#include "tilelink/kernels/ag_gemm.h"
#include "tilelink/primitives.h"
#include "tilelink/program.h"

namespace tilelink::tl {
namespace {

using rt::ExecMode;
using rt::RankCtx;
using rt::World;

Op NopWait(const std::string& label) {
  return ops::ConsumerTileWait(label, [](const Env&) {
    WaitSpec s;
    return s;  // no channels: structurally a wait, semantically free
  });
}

Op AcquireLoad(const std::string& label) {
  return ops::Load(label, /*acquire=*/true, nullptr);
}

Op PlainStore(const std::string& label) {
  return ops::Store(label, nullptr);
}

Op Notify(const std::string& label) {
  return ops::ProducerTileNotify(label, [](const Env&) {
    NotifySpec s;
    return s;
  });
}

FusedKernelSpec OneRoleSpec(BlockProgram program) {
  FusedKernelSpec spec;
  spec.name = "test_kernel";
  spec.roles.push_back(Role{"role0", 1, std::move(program)});
  return spec;
}

TEST(Verifier, AcceptsWaitBeforeAcquireLoad) {
  TileProgramBuilder b;
  b.Add(NopWait("w")).Add(AcquireLoad("l")).Add(PlainStore("s")).Add(
      Notify("n"));
  EXPECT_NO_THROW(Compiler().Compile(OneRoleSpec(b.Build())));
}

TEST(Verifier, RejectsAcquireLoadWithoutWait) {
  TileProgramBuilder b;
  b.Add(AcquireLoad("naked_load"));
  try {
    Compiler().Compile(OneRoleSpec(b.Build()));
    FAIL() << "expected VerifyError";
  } catch (const VerifyError& e) {
    EXPECT_NE(std::string(e.what()).find("naked_load"), std::string::npos);
  }
}

TEST(Verifier, RejectsNotifyWithoutPrecedingWrite) {
  TileProgramBuilder b;
  b.Add(Notify("orphan_notify"));
  EXPECT_THROW(Compiler().Compile(OneRoleSpec(b.Build())), VerifyError);
}

TEST(Verifier, WaitInsideLoopDominatesLoopBody) {
  TileProgramBuilder b;
  b.For("t", [](const Env&) { return int64_t{2}; },
        [](TileProgramBuilder& body) {
          body.Add(NopWait("w")).Add(AcquireLoad("l"));
        });
  EXPECT_NO_THROW(Compiler().Compile(OneRoleSpec(b.Build())));
}

TEST(Verifier, WaitBeforeLoopDominatesLoopBody) {
  TileProgramBuilder b;
  b.Add(NopWait("w"));
  b.For("t", [](const Env&) { return int64_t{2}; },
        [](TileProgramBuilder& body) { body.Add(AcquireLoad("l")); });
  EXPECT_NO_THROW(Compiler().Compile(OneRoleSpec(b.Build())));
}

TEST(Verifier, WaitInsideLoopDoesNotEscapeLoop) {
  // A wait inside a loop (possibly zero-trip) cannot satisfy an
  // acquire-load after the loop.
  TileProgramBuilder b;
  b.For("t", [](const Env&) { return int64_t{0}; },
        [](TileProgramBuilder& body) { body.Add(NopWait("w")); });
  b.Add(AcquireLoad("late_load"));
  EXPECT_THROW(Compiler().Compile(OneRoleSpec(b.Build())), VerifyError);
}

TEST(Listing, EmitsRolesLoopsAndSyncMnemonics) {
  TileProgramBuilder comm;
  comm.Add(ops::TilePullData("pull", [](const Env&) { return DataSpec{}; }));
  comm.Add(Notify("notify"));
  TileProgramBuilder compute;
  compute.For("k", [](const Env&) { return int64_t{4}; },
              [](TileProgramBuilder& body) {
                body.Add(NopWait("w")).Add(AcquireLoad("l"));
              });
  FusedKernelSpec spec;
  spec.name = "listing_test";
  spec.roles.push_back(Role{"comm", 2, comm.Build()});
  spec.roles.push_back(Role{"compute", 3, compute.Build()});
  CompiledKernel kernel = Compiler().Compile(std::move(spec));
  const std::string& l = kernel.listing();
  EXPECT_NE(l.find(".role comm"), std::string::npos);
  EXPECT_NE(l.find(".role compute"), std::string::npos);
  EXPECT_NE(l.find("for k:"), std::string::npos);
  EXPECT_NE(l.find("ld.global.remote"), std::string::npos);
  EXPECT_NE(l.find("red.release.global.add"), std::string::npos);
  EXPECT_NE(l.find("spin.ld.global.acquire"), std::string::npos);
  EXPECT_NE(l.find("ld.global.acquire.b128"), std::string::npos);
}

// ---------------------------------------------------------------------- //
// Fault injection: the unsafe reordering of §4.2 must be caught at runtime
// by the consistency checker (and may corrupt numerics), while the safe
// compilation of the identical kernel is clean. We use the SM-pull AG+GEMM
// kernel whose consumer loads genuinely race with the comm role's pulls
// when hoisted above their waits.
// ---------------------------------------------------------------------- //

// A purpose-built producer/consumer pair where the unsafe reorder lands the
// consumer's acquire-load deterministically inside the producer's transfer
// window: the producer pushes a large tile to its peer and notifies; the
// consumer runs a pipeline-prologue delay, waits, then loads. Sinking the
// wait (unsafe mode) makes the load probe mid-transfer.
size_t RunRaceProbe(bool unsafe) {
  const int R = 2;
  sim::MachineSpec spec = sim::MachineSpec::Test(R, 4);
  spec.nvlink_gbps = 1.0;  // 1 MiB push ~ 1 ms window
  World world(spec, ExecMode::kFunctional);
  world.checker().set_enabled(true);
  auto bufs = world.AllocSymmetric("race_buf", 1 << 16);

  TileProgramBuilder comm;
  comm.Add(ops::TilePushData(
      "push",
      [bufs](const Env& e) {
        DataSpec d;
        d.src_rank = e.rank;
        d.dst_rank = 1 - e.rank;
        d.bytes = 1 << 20;
        d.write_buf = bufs[static_cast<size_t>(1 - e.rank)];
        d.write_lo = 0;
        d.write_hi = 1 << 16;
        return d;
      }));
  comm.Add(ops::ProducerTileNotify("notify", [](const Env& e) {
    NotifySpec s;
    s.entries.push_back(NotifyEntry{
        SignalSpace::kProducerConsumer, {1 - e.rank}, 0, 1});
    return s;
  }));

  TileProgramBuilder compute;
  compute.Add(ops::Mma("prologue",
                       [](const Env&, const sim::CostModel&) {
                         return sim::Us(200.0);  // deep pipeline fill
                       }));
  compute.Add(ops::ConsumerTileWait("wait", [](const Env&) {
    WaitSpec s;
    s.waits.push_back(ChannelWait{0, 1});
    return s;
  }));
  compute.Add(ops::Load("consume", /*acquire=*/true, [bufs](const Env& e) {
    DataSpec d;
    d.read_buf = bufs[static_cast<size_t>(e.rank)];
    d.read_lo = 0;
    d.read_hi = 1 << 16;
    return d;
  }));

  FusedKernelSpec spec_k;
  spec_k.name = "race_probe";
  spec_k.roles.push_back(Role{"comm", 1, comm.Build()});
  spec_k.roles.push_back(Role{"compute", 1, compute.Build()});
  CompilerOptions opt;
  opt.unsafe_reorder = unsafe;
  CompiledKernel kernel = Compiler(opt).Compile(std::move(spec_k));
  auto bcs = BlockChannel::CreateSymmetric(world, "race", 1, 1, 1);
  world.RunSpmd([&](RankCtx& ctx) -> sim::Coro {
    auto state = kernel.Launch(ctx, *ctx.stream,
                               bcs[static_cast<size_t>(ctx.rank)]);
    co_await state->Wait();
  });
  return world.checker().violations().size();
}

TEST(FaultInjection, SafeCompilationHasNoViolations) {
  EXPECT_EQ(RunRaceProbe(false), 0u);
}

TEST(FaultInjection, UnsafeReorderIsDetectedByChecker) {
  // The sunk wait makes the acquire-load probe while the peer's push is in
  // flight: the checker must flag a read-before-release.
  EXPECT_GT(RunRaceProbe(true), 0u)
      << "unsafe reordering went undetected by the consistency checker";
}

TEST(Compiler, UnsafeModeChangesListingOrder) {
  // In the unsafe listing the acquire-load precedes the wait.
  auto build = [](bool unsafe) {
    TileProgramBuilder b;
    b.Add(PlainStore("st"));
    b.Add(NopWait("w"));
    b.Add(AcquireLoad("l"));
    CompilerOptions opt;
    opt.unsafe_reorder = unsafe;
    return Compiler(opt).Compile(OneRoleSpec(b.Build())).listing();
  };
  const std::string safe = build(false);
  const std::string unsafe = build(true);
  EXPECT_LT(safe.find("spin.ld.global.acquire"),
            safe.find("ld.global.acquire.b128"));
  EXPECT_GT(unsafe.find("spin.ld.global.acquire"),
            unsafe.find("ld.global.acquire.b128"));
}

TEST(Builder, LoopDepthsAreLexical) {
  TileProgramBuilder b;
  std::vector<int> seen_depths;
  b.For("a", [](const Env&) { return int64_t{1}; },
        [&](TileProgramBuilder& ba) {
          ba.For("b", [](const Env&) { return int64_t{1}; },
                 [&](TileProgramBuilder& bb) {
                   bb.Add(PlainStore("s"));
                 });
        });
  BlockProgram p = b.Build();
  ASSERT_EQ(p.stmts.size(), 1u);
  ASSERT_TRUE(p.stmts[0].loop != nullptr);
  EXPECT_EQ(p.stmts[0].loop->depth, 0);
  ASSERT_EQ(p.stmts[0].loop->body.size(), 1u);
  EXPECT_EQ(p.stmts[0].loop->body[0].loop->depth, 1);
}

TEST(Compiler, RejectsEmptyKernel) {
  FusedKernelSpec spec;
  spec.name = "empty";
  EXPECT_THROW(Compiler().Compile(std::move(spec)), Error);
}

}  // namespace
}  // namespace tilelink::tl
