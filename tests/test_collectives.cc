// Collectives vs. host references, both algorithms, several world sizes.
#include <gtest/gtest.h>

#include "comm/collectives.h"
#include "common/rng.h"
#include "runtime/world.h"
#include "tensor/tensor_ops.h"

namespace tilelink::comm {
namespace {

using rt::ExecMode;
using rt::RankCtx;
using rt::World;

struct Param {
  int ranks;
  Algo algo;
};

class CollectiveTest : public ::testing::TestWithParam<Param> {};

TEST_P(CollectiveTest, AllGatherMatchesReference) {
  const auto [R, algo] = GetParam();
  World world(sim::MachineSpec::Test(R), ExecMode::kFunctional);
  const int64_t m_per = 16, n = 8;
  SymTensor shards, outs, expect;
  Rng rng(42);
  for (int r = 0; r < R; ++r) {
    shards.push_back(Tensor::Alloc(world.device(r), "shard", {m_per, n},
                                   DType::kBF16));
    outs.push_back(
        Tensor::Alloc(world.device(r), "out", {m_per * R, n}, DType::kBF16));
    expect.push_back(Tensor::Alloc(world.device(r), "exp", {m_per * R, n},
                                   DType::kBF16));
    FillRandom(shards.back(), rng);
  }
  AllGatherRef(shards, expect);
  const sim::TimeNs t = world.RunSpmd([&](RankCtx& ctx) -> sim::Coro {
    co_await AllGather(ctx, shards, outs, algo);
  });
  EXPECT_GT(t, 0);
  for (int r = 0; r < R; ++r) {
    EXPECT_EQ(MaxAbsDiff(outs[static_cast<size_t>(r)],
                         expect[static_cast<size_t>(r)]),
              0.0f)
        << "rank " << r;
  }
}

TEST_P(CollectiveTest, ReduceScatterMatchesReference) {
  const auto [R, algo] = GetParam();
  World world(sim::MachineSpec::Test(R), ExecMode::kFunctional);
  const int64_t m_per = 8, n = 12;
  SymTensor ins, outs, expect;
  Rng rng(7);
  for (int r = 0; r < R; ++r) {
    ins.push_back(
        Tensor::Alloc(world.device(r), "in", {m_per * R, n}, DType::kBF16));
    outs.push_back(
        Tensor::Alloc(world.device(r), "out", {m_per, n}, DType::kBF16));
    expect.push_back(
        Tensor::Alloc(world.device(r), "exp", {m_per, n}, DType::kBF16));
    FillRandom(ins.back(), rng);
  }
  ReduceScatterRef(ins, expect);
  world.RunSpmd([&](RankCtx& ctx) -> sim::Coro {
    co_await ReduceScatter(ctx, ins, outs, algo);
  });
  for (int r = 0; r < R; ++r) {
    EXPECT_LT(MaxAbsDiff(outs[static_cast<size_t>(r)],
                         expect[static_cast<size_t>(r)]),
              1e-5f)
        << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    WorldSweep, CollectiveTest,
    ::testing::Values(Param{2, Algo::kFullMesh}, Param{2, Algo::kRing},
                      Param{4, Algo::kFullMesh}, Param{4, Algo::kRing},
                      Param{8, Algo::kFullMesh}, Param{8, Algo::kRing}),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "R" + std::to_string(info.param.ranks) +
             (info.param.algo == Algo::kRing ? "_ring" : "_mesh");
    });

TEST(Collectives, AllReduceMatchesSumOfInputs) {
  const int R = 4;
  World world(sim::MachineSpec::Test(R), ExecMode::kFunctional);
  const int64_t m = 16, n = 4;
  SymTensor ins, outs;
  Rng rng(3);
  for (int r = 0; r < R; ++r) {
    ins.push_back(Tensor::Alloc(world.device(r), "in", {m, n}, DType::kBF16));
    outs.push_back(
        Tensor::Alloc(world.device(r), "out", {m, n}, DType::kBF16));
    FillRandom(ins.back(), rng);
  }
  world.RunSpmd([&](RankCtx& ctx) -> sim::Coro {
    co_await AllReduce(ctx, ins, outs);
  });
  for (int r = 0; r < R; ++r) {
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        float want = 0.0f;
        for (int p = 0; p < R; ++p) {
          want += ins[static_cast<size_t>(p)].at({i, j});
        }
        EXPECT_NEAR(outs[static_cast<size_t>(r)].at({i, j}), want, 1e-4f);
      }
    }
  }
}

TEST(Collectives, AllToAllTransposesBlocks) {
  const int R = 4;
  World world(sim::MachineSpec::Test(R), ExecMode::kFunctional);
  const int64_t blk = 4, n = 3;
  SymTensor ins, outs;
  for (int r = 0; r < R; ++r) {
    ins.push_back(
        Tensor::Alloc(world.device(r), "in", {blk * R, n}, DType::kBF16));
    outs.push_back(
        Tensor::Alloc(world.device(r), "out", {blk * R, n}, DType::kBF16));
    FillConstant(ins.back(), 0.0f);
    for (int d = 0; d < R; ++d) {
      for (int64_t i = 0; i < blk; ++i) {
        for (int64_t j = 0; j < n; ++j) {
          // value encodes (src, dst) pair
          ins.back().at({d * blk + i, j}) = static_cast<float>(r * 10 + d);
        }
      }
    }
  }
  world.RunSpmd([&](RankCtx& ctx) -> sim::Coro {
    co_await AllToAll(ctx, ins, outs);
  });
  for (int r = 0; r < R; ++r) {
    for (int p = 0; p < R; ++p) {
      // outs[r] block p came from ins[p] block r -> value p*10 + r.
      EXPECT_EQ(outs[static_cast<size_t>(r)].at({p * blk, 0}),
                static_cast<float>(p * 10 + r));
    }
  }
}

TEST(Collectives, RingAndMeshAllGatherSameResultDifferentTiming) {
  const int R = 4;
  const int64_t m_per = 64, n = 64;
  auto run = [&](Algo algo) {
    World world(sim::MachineSpec::Test(R), ExecMode::kTimingOnly);
    SymTensor shards, outs;
    for (int r = 0; r < R; ++r) {
      shards.push_back(Tensor::Alloc(world.device(r), "s", {m_per, n},
                                     DType::kBF16));
      outs.push_back(Tensor::Alloc(world.device(r), "o", {m_per * R, n},
                                   DType::kBF16));
    }
    return world.RunSpmd([&](RankCtx& ctx) -> sim::Coro {
      co_await AllGather(ctx, shards, outs, algo);
    });
  };
  const sim::TimeNs mesh = run(Algo::kFullMesh);
  const sim::TimeNs ring = run(Algo::kRing);
  // Ring pays per-step latencies; mesh should not be slower.
  EXPECT_LE(mesh, ring);
}

}  // namespace
}  // namespace tilelink::comm
