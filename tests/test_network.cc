// Tests for the flow-level interconnect: serial bandwidth, fair sharing,
// latency accounting, local copies, cross-fabric independence, World
// routing, and stale completion events.
#include <gtest/gtest.h>

#include "runtime/world.h"
#include "sim/machine_spec.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace tilelink::sim {
namespace {

constexpr double kBw = 100.0;       // bytes/ns == GB/s
constexpr TimeNs kLatency = 1000;  // 1 us

Coro OneTransfer(Network* net, int src, int dst, uint64_t bytes,
                 TimeNs* done, Simulator* sim) {
  co_await net->Transfer(src, dst, bytes);
  *done = sim->Now();
}

TEST(Network, SingleFlowRunsAtPortBandwidth) {
  Simulator sim;
  Network net(&sim, 4, kBw, kLatency, "nvl");
  TimeNs done = 0;
  sim.Spawn(OneTransfer(&net, 0, 1, 100000, &done, &sim));
  sim.Run();
  // 100000 bytes at 100 B/ns = 1000 ns + latency.
  EXPECT_NEAR(static_cast<double>(done), 1000.0 + kLatency, 5.0);
}

TEST(Network, TwoFlowsShareIngressPort) {
  Simulator sim;
  Network net(&sim, 4, kBw, kLatency, "nvl");
  TimeNs d1 = 0, d2 = 0;
  sim.Spawn(OneTransfer(&net, 0, 2, 100000, &d1, &sim));
  sim.Spawn(OneTransfer(&net, 1, 2, 100000, &d2, &sim));
  sim.Run();
  // Both target port 2: each gets bw/2 -> ~2000 ns + latency.
  EXPECT_NEAR(static_cast<double>(d1), 2000.0 + kLatency, 10.0);
  EXPECT_NEAR(static_cast<double>(d2), 2000.0 + kLatency, 10.0);
}

TEST(Network, DisjointPairsDoNotInterfere) {
  Simulator sim;
  Network net(&sim, 4, kBw, kLatency, "nvl");
  TimeNs d1 = 0, d2 = 0;
  sim.Spawn(OneTransfer(&net, 0, 1, 100000, &d1, &sim));
  sim.Spawn(OneTransfer(&net, 2, 3, 100000, &d2, &sim));
  sim.Run();
  EXPECT_NEAR(static_cast<double>(d1), 1000.0 + kLatency, 5.0);
  EXPECT_NEAR(static_cast<double>(d2), 1000.0 + kLatency, 5.0);
}

Coro LateTransfer(Network* net, TimeNs start, int src, int dst,
                  uint64_t bytes, TimeNs* done, Simulator* sim) {
  co_await Delay{start};
  co_await net->Transfer(src, dst, bytes);
  *done = sim->Now();
}

TEST(Network, RatesRebalanceWhenFlowsJoinAndLeave) {
  Simulator sim;
  Network net(&sim, 4, kBw, /*latency=*/0, "nvl");
  TimeNs d1 = 0, d2 = 0;
  // Flow 1: 200000 bytes alone for 1000ns (100000 done), then shares.
  sim.Spawn(OneTransfer(&net, 0, 2, 200000, &d1, &sim));
  sim.Spawn(LateTransfer(&net, 1000, 1, 2, 50000, &d2, &sim));
  sim.Run();
  // After t=1000: flow1 has 100000 left at 50 B/ns -> would finish at 3000;
  // flow2 (50000 at 50 B/ns) finishes at 2000, then flow1 speeds up:
  // at t=2000 flow1 has 50000 left at full 100 -> finishes ~2500.
  EXPECT_NEAR(static_cast<double>(d2), 2000.0, 20.0);
  EXPECT_NEAR(static_cast<double>(d1), 2500.0, 20.0);
}

TEST(Network, ZeroByteTransferOnlyPaysLatency) {
  Simulator sim;
  Network net(&sim, 2, kBw, kLatency, "nvl");
  TimeNs done = 0;
  sim.Spawn(OneTransfer(&net, 0, 1, 0, &done, &sim));
  sim.Run();
  EXPECT_EQ(done, kLatency);
}

TEST(Network, LocalCopyUsesHbmBandwidth) {
  Simulator sim;
  Network net(&sim, 2, kBw, kLatency, "nvl");
  net.set_local_copy_bw_gbps(1000.0);
  TimeNs done = 0;
  sim.Spawn(OneTransfer(&net, 1, 1, 1000000, &done, &sim));
  sim.Run();
  // 1e6 bytes at 1000 B/ns = 1000ns + latency.
  EXPECT_NEAR(static_cast<double>(done), 1000.0 + kLatency, 5.0);
}

TEST(Network, TotalBytesAccounted) {
  Simulator sim;
  Network net(&sim, 4, kBw, kLatency, "nvl");
  TimeNs d = 0;
  sim.Spawn(OneTransfer(&net, 0, 1, 12345, &d, &sim));
  sim.Spawn(OneTransfer(&net, 2, 3, 55555, &d, &sim));
  sim.Run();
  EXPECT_EQ(net.total_bytes(), 12345u + 55555u);
  EXPECT_EQ(net.active_flow_count(), 0);
}

TEST(Network, CrossFabricFlowsDoNotContend) {
  // The two fabrics are separate Networks (as in World): max-min sharing
  // applies within a fabric, never across — concurrent NVLink and NIC flows
  // between the same device pair each run at their own port bandwidth.
  Simulator sim;
  Network nvlink(&sim, 4, kBw, /*latency=*/0, "nvl");
  Network nic(&sim, 4, kBw / 4, /*latency=*/0, "nic");
  TimeNs d_intra1 = 0, d_intra2 = 0, d_inter = 0;
  // Two intra flows share an ingress port; the inter flow is unaffected.
  sim.Spawn(OneTransfer(&nvlink, 0, 2, 100000, &d_intra1, &sim));
  sim.Spawn(OneTransfer(&nvlink, 1, 2, 100000, &d_intra2, &sim));
  sim.Spawn(OneTransfer(&nic, 0, 2, 100000, &d_inter, &sim));
  sim.Run();
  EXPECT_NEAR(static_cast<double>(d_intra1), 2000.0, 10.0);  // bw/2
  EXPECT_NEAR(static_cast<double>(d_intra2), 2000.0, 10.0);
  EXPECT_NEAR(static_cast<double>(d_inter), 4000.0, 10.0);  // nic bw, alone
}

TEST(Network, StaleCompletionEventsAreIgnored) {
  // Regression: flow A's completion is scheduled, then a joining flow slows
  // A (stale event #1 fires mid-flight), then the other flow finishes and A
  // speeds back up (stale event #2 fires after A's reschedule). A must
  // complete exactly once, at the rate-integrated time.
  Simulator sim;
  Network net(&sim, 4, kBw, /*latency=*/0, "nvl");
  TimeNs da = 0, db = 0;
  sim.Spawn(OneTransfer(&net, 0, 2, 300000, &da, &sim));       // A
  sim.Spawn(LateTransfer(&net, 1000, 1, 2, 50000, &db, &sim)); // B
  sim.Run();
  // A alone until t=1000 (100000 done, eta was 3000). Shared 50/50 until B
  // ends at t=2000 (A: +50000). A alone again: 150000 left at 100 B/ns ->
  // finishes at 3500, after both stale etas (3000 gen-1, 5000 gen-2).
  EXPECT_NEAR(static_cast<double>(db), 2000.0, 20.0);
  EXPECT_NEAR(static_cast<double>(da), 3500.0, 20.0);
  EXPECT_EQ(net.active_flow_count(), 0);
}

TEST(World, TransferRoutesByNodeBoundary) {
  MachineSpec spec = MachineSpec::H800x8();
  spec.num_devices = 4;
  spec.devices_per_node = 2;  // nodes {0,1} and {2,3}
  rt::World world(spec, rt::ExecMode::kTimingOnly);
  EXPECT_EQ(&world.fabric_for(0, 1), &world.intra_fabric());
  EXPECT_EQ(&world.fabric_for(2, 3), &world.intra_fabric());
  EXPECT_EQ(&world.fabric_for(1, 2), &world.inter_fabric());
  EXPECT_EQ(&world.fabric_for(3, 0), &world.inter_fabric());
  world.sim().Spawn([](rt::World* w) -> Coro {
    co_await w->Transfer(0, 1, 1000);  // same node -> NVLink
    co_await w->Transfer(0, 2, 2000);  // cross node -> NIC
    co_await w->Transfer(3, 3, 4000);  // src == dst: local copy, same node
  }(&world));
  world.sim().Run();
  EXPECT_EQ(world.intra_fabric().total_bytes(), 1000u + 4000u);
  EXPECT_EQ(world.inter_fabric().total_bytes(), 2000u);
}

TEST(World, ConcurrentIntraAndInterTransfersOverlap) {
  MachineSpec spec = MachineSpec::H800x8();
  spec.num_devices = 4;
  spec.devices_per_node = 2;
  rt::World world(spec, rt::ExecMode::kTimingOnly);
  const uint64_t bytes = 64 << 20;
  TimeNs intra_done = 0, inter_done = 0;
  Simulator& sim = world.sim();
  sim.Spawn([](rt::World* w, uint64_t b, TimeNs* done) -> Coro {
    co_await w->Transfer(0, 1, b);
    *done = w->sim().Now();
  }(&world, bytes, &intra_done));
  sim.Spawn([](rt::World* w, uint64_t b, TimeNs* done) -> Coro {
    co_await w->Transfer(1, 3, b);
    *done = w->sim().Now();
  }(&world, bytes, &inter_done));
  sim.Run();
  // Device 1 is endpoint of both, yet neither slows the other: different
  // fabrics, different ports.
  const double b = static_cast<double>(bytes);
  EXPECT_NEAR(static_cast<double>(intra_done - spec.nvlink_latency),
              b / spec.nvlink_gbps, b / spec.nvlink_gbps * 0.01);
  EXPECT_NEAR(static_cast<double>(inter_done - spec.nic_latency),
              b / spec.nic_gbps, b / spec.nic_gbps * 0.01);
}

}  // namespace
}  // namespace tilelink::sim
