// Tests for the flow-level interconnect: serial bandwidth, fair sharing,
// latency accounting, local copies.
#include <gtest/gtest.h>

#include "sim/network.h"
#include "sim/simulator.h"

namespace tilelink::sim {
namespace {

constexpr double kBw = 100.0;       // bytes/ns == GB/s
constexpr TimeNs kLatency = 1000;  // 1 us

Coro OneTransfer(Network* net, int src, int dst, uint64_t bytes,
                 TimeNs* done, Simulator* sim) {
  co_await net->Transfer(src, dst, bytes);
  *done = sim->Now();
}

TEST(Network, SingleFlowRunsAtPortBandwidth) {
  Simulator sim;
  Network net(&sim, 4, kBw, kLatency, "nvl");
  TimeNs done = 0;
  sim.Spawn(OneTransfer(&net, 0, 1, 100000, &done, &sim));
  sim.Run();
  // 100000 bytes at 100 B/ns = 1000 ns + latency.
  EXPECT_NEAR(static_cast<double>(done), 1000.0 + kLatency, 5.0);
}

TEST(Network, TwoFlowsShareIngressPort) {
  Simulator sim;
  Network net(&sim, 4, kBw, kLatency, "nvl");
  TimeNs d1 = 0, d2 = 0;
  sim.Spawn(OneTransfer(&net, 0, 2, 100000, &d1, &sim));
  sim.Spawn(OneTransfer(&net, 1, 2, 100000, &d2, &sim));
  sim.Run();
  // Both target port 2: each gets bw/2 -> ~2000 ns + latency.
  EXPECT_NEAR(static_cast<double>(d1), 2000.0 + kLatency, 10.0);
  EXPECT_NEAR(static_cast<double>(d2), 2000.0 + kLatency, 10.0);
}

TEST(Network, DisjointPairsDoNotInterfere) {
  Simulator sim;
  Network net(&sim, 4, kBw, kLatency, "nvl");
  TimeNs d1 = 0, d2 = 0;
  sim.Spawn(OneTransfer(&net, 0, 1, 100000, &d1, &sim));
  sim.Spawn(OneTransfer(&net, 2, 3, 100000, &d2, &sim));
  sim.Run();
  EXPECT_NEAR(static_cast<double>(d1), 1000.0 + kLatency, 5.0);
  EXPECT_NEAR(static_cast<double>(d2), 1000.0 + kLatency, 5.0);
}

Coro LateTransfer(Network* net, TimeNs start, int src, int dst,
                  uint64_t bytes, TimeNs* done, Simulator* sim) {
  co_await Delay{start};
  co_await net->Transfer(src, dst, bytes);
  *done = sim->Now();
}

TEST(Network, RatesRebalanceWhenFlowsJoinAndLeave) {
  Simulator sim;
  Network net(&sim, 4, kBw, /*latency=*/0, "nvl");
  TimeNs d1 = 0, d2 = 0;
  // Flow 1: 200000 bytes alone for 1000ns (100000 done), then shares.
  sim.Spawn(OneTransfer(&net, 0, 2, 200000, &d1, &sim));
  sim.Spawn(LateTransfer(&net, 1000, 1, 2, 50000, &d2, &sim));
  sim.Run();
  // After t=1000: flow1 has 100000 left at 50 B/ns -> would finish at 3000;
  // flow2 (50000 at 50 B/ns) finishes at 2000, then flow1 speeds up:
  // at t=2000 flow1 has 50000 left at full 100 -> finishes ~2500.
  EXPECT_NEAR(static_cast<double>(d2), 2000.0, 20.0);
  EXPECT_NEAR(static_cast<double>(d1), 2500.0, 20.0);
}

TEST(Network, ZeroByteTransferOnlyPaysLatency) {
  Simulator sim;
  Network net(&sim, 2, kBw, kLatency, "nvl");
  TimeNs done = 0;
  sim.Spawn(OneTransfer(&net, 0, 1, 0, &done, &sim));
  sim.Run();
  EXPECT_EQ(done, kLatency);
}

TEST(Network, LocalCopyUsesHbmBandwidth) {
  Simulator sim;
  Network net(&sim, 2, kBw, kLatency, "nvl");
  net.set_local_copy_bw_gbps(1000.0);
  TimeNs done = 0;
  sim.Spawn(OneTransfer(&net, 1, 1, 1000000, &done, &sim));
  sim.Run();
  // 1e6 bytes at 1000 B/ns = 1000ns + latency.
  EXPECT_NEAR(static_cast<double>(done), 1000.0 + kLatency, 5.0);
}

TEST(Network, TotalBytesAccounted) {
  Simulator sim;
  Network net(&sim, 4, kBw, kLatency, "nvl");
  TimeNs d = 0;
  sim.Spawn(OneTransfer(&net, 0, 1, 12345, &d, &sim));
  sim.Spawn(OneTransfer(&net, 2, 3, 55555, &d, &sim));
  sim.Run();
  EXPECT_EQ(net.total_bytes(), 12345u + 55555u);
  EXPECT_EQ(net.active_flow_count(), 0);
}

}  // namespace
}  // namespace tilelink::sim
