// Tests for the flow-level interconnect: serial bandwidth, fair sharing,
// latency accounting, local copies, cross-fabric independence, World
// routing, stale completion events, rail splitting, and the deterministic
// fault layer (targeted drops/spikes, seeded transients, ack timeouts,
// rail death and failover).
#include <gtest/gtest.h>

#include <vector>

#include "runtime/world.h"
#include "sim/fault.h"
#include "sim/machine_spec.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace tilelink::sim {
namespace {

constexpr double kBw = 100.0;       // bytes/ns == GB/s
constexpr TimeNs kLatency = 1000;  // 1 us

Coro OneTransfer(Network* net, int src, int dst, uint64_t bytes,
                 TimeNs* done, Simulator* sim) {
  co_await net->Transfer(src, dst, bytes);
  *done = sim->Now();
}

TEST(Network, SingleFlowRunsAtPortBandwidth) {
  Simulator sim;
  Network net(&sim, 4, kBw, kLatency, "nvl");
  TimeNs done = 0;
  sim.Spawn(OneTransfer(&net, 0, 1, 100000, &done, &sim));
  sim.Run();
  // 100000 bytes at 100 B/ns = 1000 ns + latency.
  EXPECT_NEAR(static_cast<double>(done), 1000.0 + kLatency, 5.0);
}

TEST(Network, TwoFlowsShareIngressPort) {
  Simulator sim;
  Network net(&sim, 4, kBw, kLatency, "nvl");
  TimeNs d1 = 0, d2 = 0;
  sim.Spawn(OneTransfer(&net, 0, 2, 100000, &d1, &sim));
  sim.Spawn(OneTransfer(&net, 1, 2, 100000, &d2, &sim));
  sim.Run();
  // Both target port 2: each gets bw/2 -> ~2000 ns + latency.
  EXPECT_NEAR(static_cast<double>(d1), 2000.0 + kLatency, 10.0);
  EXPECT_NEAR(static_cast<double>(d2), 2000.0 + kLatency, 10.0);
}

TEST(Network, DisjointPairsDoNotInterfere) {
  Simulator sim;
  Network net(&sim, 4, kBw, kLatency, "nvl");
  TimeNs d1 = 0, d2 = 0;
  sim.Spawn(OneTransfer(&net, 0, 1, 100000, &d1, &sim));
  sim.Spawn(OneTransfer(&net, 2, 3, 100000, &d2, &sim));
  sim.Run();
  EXPECT_NEAR(static_cast<double>(d1), 1000.0 + kLatency, 5.0);
  EXPECT_NEAR(static_cast<double>(d2), 1000.0 + kLatency, 5.0);
}

Coro LateTransfer(Network* net, TimeNs start, int src, int dst,
                  uint64_t bytes, TimeNs* done, Simulator* sim) {
  co_await Delay{start};
  co_await net->Transfer(src, dst, bytes);
  *done = sim->Now();
}

TEST(Network, RatesRebalanceWhenFlowsJoinAndLeave) {
  Simulator sim;
  Network net(&sim, 4, kBw, /*latency=*/0, "nvl");
  TimeNs d1 = 0, d2 = 0;
  // Flow 1: 200000 bytes alone for 1000ns (100000 done), then shares.
  sim.Spawn(OneTransfer(&net, 0, 2, 200000, &d1, &sim));
  sim.Spawn(LateTransfer(&net, 1000, 1, 2, 50000, &d2, &sim));
  sim.Run();
  // After t=1000: flow1 has 100000 left at 50 B/ns -> would finish at 3000;
  // flow2 (50000 at 50 B/ns) finishes at 2000, then flow1 speeds up:
  // at t=2000 flow1 has 50000 left at full 100 -> finishes ~2500.
  EXPECT_NEAR(static_cast<double>(d2), 2000.0, 20.0);
  EXPECT_NEAR(static_cast<double>(d1), 2500.0, 20.0);
}

TEST(Network, ZeroByteTransferOnlyPaysLatency) {
  Simulator sim;
  Network net(&sim, 2, kBw, kLatency, "nvl");
  TimeNs done = 0;
  sim.Spawn(OneTransfer(&net, 0, 1, 0, &done, &sim));
  sim.Run();
  EXPECT_EQ(done, kLatency);
}

TEST(Network, LocalCopyUsesHbmBandwidth) {
  Simulator sim;
  Network net(&sim, 2, kBw, kLatency, "nvl");
  net.set_local_copy_bw_gbps(1000.0);
  TimeNs done = 0;
  sim.Spawn(OneTransfer(&net, 1, 1, 1000000, &done, &sim));
  sim.Run();
  // 1e6 bytes at 1000 B/ns = 1000ns + latency.
  EXPECT_NEAR(static_cast<double>(done), 1000.0 + kLatency, 5.0);
}

TEST(Network, TotalBytesAccounted) {
  Simulator sim;
  Network net(&sim, 4, kBw, kLatency, "nvl");
  TimeNs d = 0;
  sim.Spawn(OneTransfer(&net, 0, 1, 12345, &d, &sim));
  sim.Spawn(OneTransfer(&net, 2, 3, 55555, &d, &sim));
  sim.Run();
  EXPECT_EQ(net.total_bytes(), 12345u + 55555u);
  EXPECT_EQ(net.active_flow_count(), 0);
}

TEST(Network, CrossFabricFlowsDoNotContend) {
  // The two fabrics are separate Networks (as in World): max-min sharing
  // applies within a fabric, never across — concurrent NVLink and NIC flows
  // between the same device pair each run at their own port bandwidth.
  Simulator sim;
  Network nvlink(&sim, 4, kBw, /*latency=*/0, "nvl");
  Network nic(&sim, 4, kBw / 4, /*latency=*/0, "nic");
  TimeNs d_intra1 = 0, d_intra2 = 0, d_inter = 0;
  // Two intra flows share an ingress port; the inter flow is unaffected.
  sim.Spawn(OneTransfer(&nvlink, 0, 2, 100000, &d_intra1, &sim));
  sim.Spawn(OneTransfer(&nvlink, 1, 2, 100000, &d_intra2, &sim));
  sim.Spawn(OneTransfer(&nic, 0, 2, 100000, &d_inter, &sim));
  sim.Run();
  EXPECT_NEAR(static_cast<double>(d_intra1), 2000.0, 10.0);  // bw/2
  EXPECT_NEAR(static_cast<double>(d_intra2), 2000.0, 10.0);
  EXPECT_NEAR(static_cast<double>(d_inter), 4000.0, 10.0);  // nic bw, alone
}

TEST(Network, StaleCompletionEventsAreIgnored) {
  // Regression: flow A's completion is scheduled, then a joining flow slows
  // A (stale event #1 fires mid-flight), then the other flow finishes and A
  // speeds back up (stale event #2 fires after A's reschedule). A must
  // complete exactly once, at the rate-integrated time.
  Simulator sim;
  Network net(&sim, 4, kBw, /*latency=*/0, "nvl");
  TimeNs da = 0, db = 0;
  sim.Spawn(OneTransfer(&net, 0, 2, 300000, &da, &sim));       // A
  sim.Spawn(LateTransfer(&net, 1000, 1, 2, 50000, &db, &sim)); // B
  sim.Run();
  // A alone until t=1000 (100000 done, eta was 3000). Shared 50/50 until B
  // ends at t=2000 (A: +50000). A alone again: 150000 left at 100 B/ns ->
  // finishes at 3500, after both stale etas (3000 gen-1, 5000 gen-2).
  EXPECT_NEAR(static_cast<double>(db), 2000.0, 20.0);
  EXPECT_NEAR(static_cast<double>(da), 3500.0, 20.0);
  EXPECT_EQ(net.active_flow_count(), 0);
}

TEST(World, TransferRoutesByNodeBoundary) {
  MachineSpec spec = MachineSpec::H800x8();
  spec.num_devices = 4;
  spec.devices_per_node = 2;  // nodes {0,1} and {2,3}
  rt::World world(spec, rt::ExecMode::kTimingOnly);
  EXPECT_EQ(&world.fabric_for(0, 1), &world.intra_fabric());
  EXPECT_EQ(&world.fabric_for(2, 3), &world.intra_fabric());
  EXPECT_EQ(&world.fabric_for(1, 2), &world.inter_fabric());
  EXPECT_EQ(&world.fabric_for(3, 0), &world.inter_fabric());
  world.sim().Spawn([](rt::World* w) -> Coro {
    co_await w->Transfer(0, 1, 1000);  // same node -> NVLink
    co_await w->Transfer(0, 2, 2000);  // cross node -> NIC
    co_await w->Transfer(3, 3, 4000);  // src == dst: local copy, same node
  }(&world));
  world.sim().Run();
  EXPECT_EQ(world.intra_fabric().total_bytes(), 1000u + 4000u);
  EXPECT_EQ(world.inter_fabric().total_bytes(), 2000u);
}

TEST(World, ConcurrentIntraAndInterTransfersOverlap) {
  MachineSpec spec = MachineSpec::H800x8();
  spec.num_devices = 4;
  spec.devices_per_node = 2;
  rt::World world(spec, rt::ExecMode::kTimingOnly);
  const uint64_t bytes = 64 << 20;
  TimeNs intra_done = 0, inter_done = 0;
  Simulator& sim = world.sim();
  sim.Spawn([](rt::World* w, uint64_t b, TimeNs* done) -> Coro {
    co_await w->Transfer(0, 1, b);
    *done = w->sim().Now();
  }(&world, bytes, &intra_done));
  sim.Spawn([](rt::World* w, uint64_t b, TimeNs* done) -> Coro {
    co_await w->Transfer(1, 3, b);
    *done = w->sim().Now();
  }(&world, bytes, &inter_done));
  sim.Run();
  // Device 1 is endpoint of both, yet neither slows the other: different
  // fabrics, different ports.
  const double b = static_cast<double>(bytes);
  EXPECT_NEAR(static_cast<double>(intra_done - spec.nvlink_latency),
              b / spec.nvlink_gbps, b / spec.nvlink_gbps * 0.01);
  EXPECT_NEAR(static_cast<double>(inter_done - spec.nic_latency),
              b / spec.nic_gbps, b / spec.nic_gbps * 0.01);
}

// ---------------------------------------------------------------------------
// Rails
// ---------------------------------------------------------------------------

Coro OneTry(Network* net, int src, int dst, uint64_t bytes, TransferOpts opts,
            TransferOutcome* out, TimeNs* done, Simulator* sim) {
  co_await net->TryTransfer(src, dst, bytes, opts, out);
  *done = sim->Now();
}

TEST(Rails, FlowsContendOnlyWithinTheirRail) {
  Simulator sim;
  Network net(&sim, 4, kBw, /*latency=*/0, "nic");
  net.ConfigureRails(2);
  // Two flows on the same egress port but different rails: each owns its
  // rail's bw/2 share, so both finish as if alone on half the port.
  TransferOutcome oa, ob;
  TimeNs da = 0, db = 0;
  TransferOpts rail0, rail1;
  rail0.rail = 0;
  rail1.rail = 1;
  sim.Spawn(OneTry(&net, 0, 1, 100000, rail0, &oa, &da, &sim));
  sim.Spawn(OneTry(&net, 0, 2, 100000, rail1, &ob, &db, &sim));
  sim.Run();
  EXPECT_NEAR(static_cast<double>(da), 2000.0, 5.0);  // 100000 / (100/2)
  EXPECT_NEAR(static_cast<double>(db), 2000.0, 5.0);
  EXPECT_EQ(oa.rail, 0);
  EXPECT_EQ(ob.rail, 1);

  // Same rail: they share the rail's bw/2.
  TimeNs dc = 0, dd = 0;
  TransferOutcome oc, od;
  sim.Spawn(OneTry(&net, 0, 1, 100000, rail0, &oc, &dc, &sim));
  sim.Spawn(OneTry(&net, 0, 2, 100000, rail0, &od, &dd, &sim));
  const TimeNs t0 = sim.Now();
  sim.Run();
  EXPECT_NEAR(static_cast<double>(dc - t0), 4000.0, 5.0);
  EXPECT_NEAR(static_cast<double>(dd - t0), 4000.0, 5.0);
}

TEST(Rails, AutoPickSpreadsAcrossLeastLoadedLiveRails) {
  Simulator sim;
  Network net(&sim, 2, kBw, /*latency=*/0, "nic");
  net.ConfigureRails(4);
  net.SetRailScale(/*port=*/-1, /*rail=*/2, 0.0);  // rail 2 dead up front
  EXPECT_EQ(net.rail_generation(), 1u);
  std::vector<TransferOutcome> outs(6);
  std::vector<TimeNs> done(6);
  for (int i = 0; i < 6; ++i) {
    sim.Spawn(OneTry(&net, 0, 1, 1000, TransferOpts{}, &outs[i], &done[i],
                     &sim));
  }
  sim.Run();
  int per_rail[4] = {0, 0, 0, 0};
  for (const TransferOutcome& o : outs) per_rail[o.rail]++;
  EXPECT_EQ(per_rail[0], 2);  // 6 flows over live rails {0, 1, 3}
  EXPECT_EQ(per_rail[1], 2);
  EXPECT_EQ(per_rail[2], 0);
  EXPECT_EQ(per_rail[3], 2);
}

// ---------------------------------------------------------------------------
// Faults
// ---------------------------------------------------------------------------

TEST(Faults, TargetedDropBillsWireButFailsDelivery) {
  Simulator sim;
  Network net(&sim, 2, kBw, kLatency, "nic");
  FaultPlan plan;
  plan.DropTransfer("nic", 0, 1, /*ordinal=*/0);
  net.SetFaultPlan(&plan);
  TransferOutcome o0, o1;
  TimeNs d0 = 0, d1 = 0;
  sim.Spawn([](Network* net, TransferOutcome* o0, TransferOutcome* o1,
               TimeNs* d0, TimeNs* d1, Simulator* sim) -> Coro {
    co_await net->TryTransfer(0, 1, 100000, TransferOpts{}, o0);
    *d0 = sim->Now();
    co_await net->TryTransfer(0, 1, 100000, TransferOpts{}, o1);
    *d1 = sim->Now();
  }(&net, &o0, &o1, &d0, &d1, &sim));
  sim.Run();
  EXPECT_FALSE(o0.delivered);  // ordinal 0 dropped...
  EXPECT_EQ(o0.ordinal, 0u);
  EXPECT_NEAR(static_cast<double>(d0), 1000.0 + kLatency, 5.0);  // wire billed
  EXPECT_TRUE(o1.delivered);  // ...retry carries ordinal 1, not re-dropped
  EXPECT_EQ(o1.ordinal, 1u);
  EXPECT_EQ(net.fault_stats().drops, 1u);
}

TEST(Faults, TransferWrapperRetriesDroppedChunks) {
  Simulator sim;
  Network net(&sim, 2, kBw, kLatency, "nic");
  FaultPlan plan;
  plan.DropTransfer("nic", 0, 1, 0);
  plan.DropTransfer("nic", 0, 1, 1);
  net.SetFaultPlan(&plan);
  TimeNs done = 0;
  sim.Spawn(OneTransfer(&net, 0, 1, 100000, &done, &sim));
  sim.Run();
  EXPECT_GT(done, 0);
  EXPECT_EQ(net.fault_stats().drops, 2u);
  EXPECT_EQ(net.fault_stats().retries, 2u);
}

TEST(Faults, ExhaustedRetriesRaiseNamedFaultError) {
  Simulator sim;
  Network net(&sim, 2, kBw, kLatency, "nic");
  FaultPlan plan;
  for (uint64_t ord = 0; ord < 8; ++ord) plan.DropTransfer("nic", 0, 1, ord);
  RetryPolicy rp;
  rp.max_retries = 2;
  plan.set_retry(rp);
  net.SetFaultPlan(&plan);
  TimeNs done = 0;
  sim.Spawn(OneTransfer(&net, 0, 1, 100000, &done, &sim));
  try {
    sim.Run();
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.role(), "nic.transfer");
    EXPECT_EQ(e.rank(), 0);
    EXPECT_EQ(e.attempts(), 3);  // 1 + max_retries
    EXPECT_NE(std::string(e.what()).find("chunk dropped"), std::string::npos);
  }
}

TEST(Faults, LatencySpikeBillsMultiplier) {
  Simulator sim;
  Network net(&sim, 2, kBw, kLatency, "nic");
  FaultPlan plan;
  plan.SpikeTransfer("nic", 0, 1, /*ordinal=*/0, /*mult=*/3.0);
  net.SetFaultPlan(&plan);
  TimeNs spiked = 0, clean = 0;
  sim.Spawn([](Network* net, TimeNs* spiked, TimeNs* clean,
               Simulator* sim) -> Coro {
    const TimeNs t0 = sim->Now();
    co_await net->Transfer(0, 1, 100000);
    *spiked = sim->Now() - t0;
    const TimeNs t1 = sim->Now();
    co_await net->Transfer(0, 1, 100000);
    *clean = sim->Now() - t1;
  }(&net, &spiked, &clean, &sim));
  sim.Run();
  EXPECT_NEAR(static_cast<double>(spiked), 3.0 * static_cast<double>(clean),
              5.0);
  EXPECT_EQ(net.fault_stats().spikes, 1u);
}

TEST(Faults, RailDeathParksFlowAndAckTimeoutRecovers) {
  Simulator sim;
  Network net(&sim, 2, kBw, /*latency=*/10, "nic");
  net.ConfigureRails(2);
  // Kill rail 0 mid-flight. The legacy Transfer wrapper picks rail 0 (least
  // loaded, tie-lowest), the flow parks at rate 0, the ack timeout fires,
  // and the retry lands on surviving rail 1.
  FaultPlan plan;
  plan.DegradeRail("nic", /*port=*/-1, /*rail=*/0, /*at=*/500,
                   /*fraction=*/0.0);
  net.SetFaultPlan(&plan);
  TimeNs done = 0;
  sim.Spawn(OneTransfer(&net, 0, 1, 100000, &done, &sim));
  sim.Run();
  EXPECT_GT(done, 0);
  EXPECT_GE(net.fault_stats().timeouts, 1u);
  EXPECT_GE(net.fault_stats().retries, 1u);
  EXPECT_EQ(net.RailScale(0, 0), 0.0);
  EXPECT_EQ(net.RailScale(0, 1), 1.0);
  EXPECT_EQ(net.active_flow_count(), 0);
}

TEST(Faults, IdenticalSeedsReplayIdenticalTimelines) {
  // Two independent simulators with the same seeded plan must produce
  // bit-identical completion times and fault counters; a different seed
  // must produce a different timeline.
  auto run = [](uint64_t seed, std::vector<TimeNs>* times) -> FaultStats {
    Simulator sim;
    Network net(&sim, 4, kBw, kLatency, "nic");
    FaultPlan plan;
    plan.RandomTransients("nic", seed, /*drop_prob=*/0.25,
                          /*spike_prob=*/0.25, /*spike_mult=*/2.0);
    net.SetFaultPlan(&plan);
    times->assign(16, 0);
    for (int i = 0; i < 16; ++i) {
      sim.Spawn(OneTransfer(&net, i % 3, 3, 50000, &(*times)[i], &sim));
    }
    sim.Run();
    return net.fault_stats();
  };
  std::vector<TimeNs> a, b, c;
  const FaultStats sa = run(42, &a);
  const FaultStats sb = run(42, &b);
  const FaultStats sc = run(43, &c);
  EXPECT_EQ(a, b);
  EXPECT_EQ(sa.drops, sb.drops);
  EXPECT_EQ(sa.spikes, sb.spikes);
  EXPECT_GT(sa.drops + sa.spikes, 0u);  // the mix actually injected faults
  EXPECT_GT(sc.drops + sc.spikes, 0u);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace tilelink::sim
