// Multi-node fabric subsystem: hierarchical vs flat collectives, DP
// gradient sync, fabric channel budgets, the NIC-knob tuning hooks, and the
// functional payload mode (bit-exact data movement validated end-to-end by
// the consistency checker, plus §4.2 fault injection on the NIC rail).
#include <gtest/gtest.h>

#include <cstdio>

#include "common/check.h"
#include "sim/machine_spec.h"
#include "tilelink/builder/role_plan.h"
#include "tilelink/kernels/gemm_rs.h"
#include "tilelink/multinode/hier_collectives.h"
#include "tilelink/multinode/multinode_tuning.h"
#include "tilelink/multinode/payload_validation.h"

namespace tilelink::multinode {
namespace {

using sim::MachineSpec;
using sim::TimeNs;

MachineSpec TwoNodeSpec(int per_node) {
  MachineSpec spec = MachineSpec::H800x8();
  spec.num_devices = 2 * per_node;
  spec.devices_per_node = per_node;
  return spec;
}

// ---------------------------------------------------------------------------
// InOrderSignal
// ---------------------------------------------------------------------------

TEST(InOrderSignal, PublishesOnlyContiguousPrefix) {
  sim::Simulator sim;
  InOrderSignal sig(&sim, "t");
  sig.Complete(1, 4);  // out of order: nothing published yet
  EXPECT_EQ(sig.tiles_arrived().value(), 0u);
  sig.Complete(2, 4);
  EXPECT_EQ(sig.tiles_arrived().value(), 0u);
  sig.Complete(0, 4);  // prefix 0..2 complete
  EXPECT_EQ(sig.tiles_arrived().value(), 12u);
  sig.Complete(3, 2);
  EXPECT_EQ(sig.tiles_arrived().value(), 14u);
}

// ---------------------------------------------------------------------------
// ResourceBudget fabric channels
// ---------------------------------------------------------------------------

TEST(ResourceBudget, FabricChannelsClampClaims) {
  tl::ResourceBudget budget(132);
  budget.SetFabricChannels(tl::FabricBinding::kNic, 16);
  EXPECT_EQ(budget.ClaimFabric(tl::FabricBinding::kNic, 12), 12);
  EXPECT_EQ(budget.ClaimFabric(tl::FabricBinding::kNic, 12), 4);  // clamped
  // Exhausted budget still grants one channel so the role makes progress.
  EXPECT_EQ(budget.ClaimFabric(tl::FabricBinding::kNic, 4), 1);
  EXPECT_EQ(budget.fabric_used(tl::FabricBinding::kNic), 17);
  // Unlimited fabric: grants verbatim.
  EXPECT_EQ(budget.ClaimFabric(tl::FabricBinding::kNvlink, 64), 64);
}

TEST(ResourceBudget, ForDeviceUsesSpecBudgets) {
  MachineSpec spec = MachineSpec::H800x8();
  tl::ResourceBudget budget = tl::ResourceBudget::ForDevice(spec);
  EXPECT_EQ(budget.total(), spec.sms_per_device);
  EXPECT_EQ(budget.fabric_capacity(tl::FabricBinding::kNic),
            spec.nic_queue_pairs);
  EXPECT_EQ(budget.fabric_capacity(tl::FabricBinding::kCopyEngine),
            spec.copy_engines_per_device);
  EXPECT_LT(budget.fabric_capacity(tl::FabricBinding::kNvlink), 0);
}

TEST(FabricBinding, NamesAndResourceMapping) {
  EXPECT_STREQ(tl::FabricBindingName(tl::FabricBinding::kNic), "nic");
  EXPECT_EQ(tl::FabricForResource(tl::CommResource::kSmPull),
            tl::FabricBinding::kNvlink);
  EXPECT_EQ(tl::FabricForResource(tl::CommResource::kDma),
            tl::FabricBinding::kCopyEngine);
}

// ---------------------------------------------------------------------------
// Hierarchical vs flat collectives
// ---------------------------------------------------------------------------

TEST(HierCollectives, HierarchicalAllGatherBeatsFlatAtTwoByEight) {
  const MachineSpec spec = TwoNodeSpec(8);
  const HierConfig cfg;
  // Paper-scale shard: 32 tiles x 512 KiB = 16 MiB per rank.
  const TimeNs hier = SimulateHierAllGather(spec, 32, 512 << 10, cfg);
  const TimeNs flat = SimulateFlatAllGather(spec, 32, 512 << 10, cfg);
  std::printf("AG 2x8: hier %.3f ms, flat %.3f ms\n", hier / 1e6,
              flat / 1e6);
  EXPECT_GT(hier, 0);
  EXPECT_LT(hier, flat);
  // The flat ring pushes (R-1)/R of the volume through the two NIC hops;
  // hierarchy should win by a wide margin, not a rounding error.
  EXPECT_LT(static_cast<double>(hier), 0.7 * static_cast<double>(flat));
}

TEST(HierCollectives, HierarchicalReduceScatterBeatsFlatAtTwoByEight) {
  const MachineSpec spec = TwoNodeSpec(8);
  const HierConfig cfg;
  // RS input: one tile per destination rank per tile-slot.
  const TimeNs hier = SimulateHierReduceScatter(spec, 32, 512 << 10, cfg);
  const TimeNs flat = SimulateFlatReduceScatter(spec, 32, 512 << 10, cfg);
  std::printf("RS 2x8: hier %.3f ms, flat %.3f ms\n", hier / 1e6,
              flat / 1e6);
  EXPECT_GT(hier, 0);
  EXPECT_LT(static_cast<double>(hier), 0.7 * static_cast<double>(flat));
}

TEST(HierCollectives, SingleNodeDegeneratesWithoutDeadlock) {
  MachineSpec spec = MachineSpec::Test(4);
  const HierConfig cfg;
  const TimeNs ag = SimulateHierAllGather(spec, 8, 1 << 20, cfg);
  const TimeNs rs = SimulateHierReduceScatter(spec, 8, 1 << 20, cfg);
  EXPECT_GT(ag, 0);
  EXPECT_GT(rs, 0);
}

// Degenerate single-node topology: with num_nodes() == 1 the hierarchical
// collectives skip the rail stage entirely (no self-exchange over the NIC),
// leaving exactly the flat single-stage NVLink ring — the makespans must be
// identical, not merely close.
TEST(HierCollectives, SingleNodeHierMatchesFlatTiming) {
  const MachineSpec spec = MachineSpec::H800x8();  // 1x8
  const HierConfig cfg;
  EXPECT_EQ(SimulateHierAllGather(spec, 16, 256 << 10, cfg),
            SimulateFlatAllGather(spec, 16, 256 << 10, cfg));
  EXPECT_EQ(SimulateHierReduceScatter(spec, 16, 256 << 10, cfg),
            SimulateFlatReduceScatter(spec, 16, 256 << 10, cfg));
}

TEST(HierCollectives, DeterministicAcrossRuns) {
  const MachineSpec spec = TwoNodeSpec(4);
  const HierConfig cfg;
  const TimeNs a = SimulateHierAllGather(spec, 16, 256 << 10, cfg);
  const TimeNs b = SimulateHierAllGather(spec, 16, 256 << 10, cfg);
  EXPECT_EQ(a, b);
}

TEST(HierCollectives, AllGatherRespectsWireLowerBound) {
  const MachineSpec spec = TwoNodeSpec(8);
  const HierConfig cfg;
  const int64_t tiles = 32;
  const uint64_t tile_bytes = 512 << 10;
  const TimeNs hier = SimulateHierAllGather(spec, tiles, tile_bytes, cfg);
  // Rail: the full shard crosses the NIC once. Ring: each rank forwards
  // (D-1) blocks of 2 shards over NVLink. The makespan cannot beat either.
  const double shard = static_cast<double>(tiles * tile_bytes);
  const TimeNs rail_floor = static_cast<TimeNs>(shard / spec.nic_gbps);
  const TimeNs ring_floor =
      static_cast<TimeNs>(7 * 2 * shard / spec.nvlink_gbps);
  EXPECT_GE(hier, std::max(rail_floor, ring_floor));
}

// ---------------------------------------------------------------------------
// DP gradient sync
// ---------------------------------------------------------------------------

TEST(DpAllReduce, TracksAnalyticWireTimeForLargeBuffers) {
  const MachineSpec spec = TwoNodeSpec(8);
  tl::TuneCandidate c;
  const uint64_t bytes = 128ull << 20;  // 128 MiB gradient per rank
  const TimeNs t = SimulateDpSync(spec, bytes, c);
  // RS sends B/2, AG sends B/2: ~B bytes per NIC port per direction.
  const double wire = static_cast<double>(bytes) / spec.nic_gbps;
  std::printf("DP sync 128MiB: %.3f ms (wire floor %.3f ms)\n", t / 1e6,
              wire / 1e6);
  EXPECT_GT(static_cast<double>(t), wire);
  EXPECT_LT(static_cast<double>(t), 1.5 * wire);
}

TEST(DpAllReduce, StagingDepthHidesMessageLatency) {
  const MachineSpec spec = TwoNodeSpec(8);
  // Latency-dominated regime: many small NIC messages.
  tl::TuneCandidate shallow;
  shallow.nic_chunk_tiles = 1;
  shallow.staging_depth = 1;
  tl::TuneCandidate deep = shallow;
  deep.staging_depth = 8;
  const uint64_t bytes = 16ull << 20;
  const TimeNs t_shallow = SimulateDpSync(spec, bytes, shallow);
  const TimeNs t_deep = SimulateDpSync(spec, bytes, deep);
  std::printf("DP sync staging: depth1 %.3f ms, depth8 %.3f ms\n",
              t_shallow / 1e6, t_deep / 1e6);
  EXPECT_LT(t_deep, t_shallow);
}

TEST(DpAllReduce, StagingDepthClampedByNicChannelBudget) {
  MachineSpec spec = TwoNodeSpec(8);
  spec.nic_queue_pairs = 4;
  rt::World world(spec, rt::ExecMode::kTimingOnly);
  HierConfig cfg;
  cfg.staging_depth = 64;
  DpAllReduce ar(world, 32, 1 << 20, cfg);
  // 2 phases x 1 peer = 2 concurrent exchanges share 4 queue pairs.
  EXPECT_EQ(ar.effective_staging_depth(), 2);
}

TEST(DpAllReduce, SingleNodeIsSetupOnly) {
  MachineSpec spec = MachineSpec::Test(4);
  tl::TuneCandidate c;
  const TimeNs t = SimulateDpSync(spec, 64 << 20, c);
  EXPECT_LT(t, sim::Us(200));  // rendezvous + setup, no wire time
}

TEST(DpSync, LowerBoundIsSound) {
  const MachineSpec spec = TwoNodeSpec(8);
  tl::TuneCandidate c;
  for (uint64_t bytes : {8ull << 20, 64ull << 20, 256ull << 20}) {
    EXPECT_LE(DpSyncLowerBound(spec, bytes, c),
              SimulateDpSync(spec, bytes, c))
        << bytes;
  }
}

TEST(DpSync, TunedConfigNeverLosesToSeed) {
  const MachineSpec spec = TwoNodeSpec(8);
  tl::TuneCandidate base;
  const uint64_t bytes = 48ull << 20;
  const TimeNs seed_cost = SimulateDpSync(spec, bytes, base);
  const tl::TuneResult r =
      TuneDpSync(spec, bytes, tl::TuningSpace::MultiNode(), base);
  EXPECT_LE(r.best_cost, seed_cost);
  EXPECT_EQ(r.best_cost, SimulateDpSync(spec, bytes, r.best));
}

// ---------------------------------------------------------------------------
// Functional payload mode: bit-exact data movement, consistency-checked
// ---------------------------------------------------------------------------

TEST(PayloadMode, HierAllGatherBitExactAtTwoByEight) {
  const PayloadReport r =
      ValidateHierAllGather(TwoNodeSpec(8), 6, 16 << 10, 8, HierConfig());
  EXPECT_TRUE(r.bit_exact);
  EXPECT_EQ(r.violations, 0u);
}

TEST(PayloadMode, HierReduceScatterBitExactAtTwoByEight) {
  const PayloadReport r =
      ValidateHierReduceScatter(TwoNodeSpec(8), 6, 16 << 10, 8, HierConfig());
  EXPECT_TRUE(r.bit_exact);
  EXPECT_EQ(r.violations, 0u);
}

TEST(PayloadMode, DpAllReduceBitExactAtTwoByEight) {
  // 7 tiles across 2 nodes exercises the uneven remainder block (3 + 4).
  const PayloadReport r =
      ValidateDpAllReduce(TwoNodeSpec(8), 7, 16 << 10, 8, HierConfig());
  EXPECT_TRUE(r.bit_exact);
  EXPECT_EQ(r.violations, 0u);
}

TEST(PayloadMode, FlatCollectivesBitExactAtTwoByFour) {
  const MachineSpec spec = TwoNodeSpec(4);
  const HierConfig cfg;
  const PayloadReport ag = ValidateFlatAllGather(spec, 6, 16 << 10, 8, cfg);
  EXPECT_TRUE(ag.bit_exact);
  EXPECT_EQ(ag.violations, 0u);
  const PayloadReport rs =
      ValidateFlatReduceScatter(spec, 6, 16 << 10, 8, cfg);
  EXPECT_TRUE(rs.bit_exact);
  EXPECT_EQ(rs.violations, 0u);
}

// Chunk boundaries that straddle segment/group edges: a chunk size that
// does not divide the shard exercises the segmented copy-run construction.
TEST(PayloadMode, RaggedChunkSizesStayBitExact) {
  const MachineSpec spec = TwoNodeSpec(4);
  HierConfig cfg;
  cfg.nic_chunk_tiles = 3;
  cfg.intra_chunk_tiles = 5;
  const PayloadReport ag = ValidateHierAllGather(spec, 7, 16 << 10, 4, cfg);
  EXPECT_TRUE(ag.bit_exact);
  EXPECT_EQ(ag.violations, 0u);
  const PayloadReport rs =
      ValidateHierReduceScatter(spec, 7, 16 << 10, 4, cfg);
  EXPECT_TRUE(rs.bit_exact);
  EXPECT_EQ(rs.violations, 0u);
}

// Three nodes exercise the multi-rail-peer paths the 2x8 cases cannot:
// per-source segment ordering (SourceIndex/SourceNode), concurrent rail
// streams per sender, and three-way DP groups.
TEST(PayloadMode, ThreeNodeTopologyStaysBitExact) {
  MachineSpec spec = MachineSpec::H800x8();
  spec.num_devices = 6;
  spec.devices_per_node = 2;
  const HierConfig cfg;
  const PayloadReport ag = ValidateHierAllGather(spec, 5, 16 << 10, 4, cfg);
  EXPECT_TRUE(ag.bit_exact);
  EXPECT_EQ(ag.violations, 0u);
  const PayloadReport rs =
      ValidateHierReduceScatter(spec, 5, 16 << 10, 4, cfg);
  EXPECT_TRUE(rs.bit_exact);
  EXPECT_EQ(rs.violations, 0u);
  const PayloadReport ar = ValidateDpAllReduce(spec, 8, 16 << 10, 4, cfg);
  EXPECT_TRUE(ar.bit_exact);
  EXPECT_EQ(ar.violations, 0u);
  // The injected fault stays a *single* chunk even with two rail peers per
  // sender (scoped to the first rail exchange) and is still caught.
  HierConfig fault = cfg;
  fault.unsafe_rail_src = 0;
  fault.unsafe_rail_chunk = 0;
  const PayloadReport f = ValidateHierAllGather(spec, 5, 16 << 10, 4, fault);
  EXPECT_GE(f.violations, 1u);
}

// Degenerate topologies keep the functional guarantees: one node (ring
// only), one rank per node (rail only), and a single rank.
TEST(PayloadMode, DegenerateTopologiesStayBitExact) {
  const HierConfig cfg;
  for (const MachineSpec& spec :
       {MachineSpec::Test(4), TwoNodeSpec(1), MachineSpec::Test(1)}) {
    const PayloadReport ag = ValidateHierAllGather(spec, 6, 16 << 10, 4, cfg);
    EXPECT_TRUE(ag.bit_exact) << spec.num_devices << "x"
                              << spec.devices_per_node;
    EXPECT_EQ(ag.violations, 0u);
    const PayloadReport rs =
        ValidateHierReduceScatter(spec, 6, 16 << 10, 4, cfg);
    EXPECT_TRUE(rs.bit_exact) << spec.num_devices << "x"
                              << spec.devices_per_node;
    EXPECT_EQ(rs.violations, 0u);
    const PayloadReport ar = ValidateDpAllReduce(spec, 6, 16 << 10, 4, cfg);
    EXPECT_TRUE(ar.bit_exact);
    EXPECT_EQ(ar.violations, 0u);
  }
}

// Payload mode moves data and probes the checker but adds no simulated
// time: the functional makespan equals the timing-only one exactly.
TEST(PayloadMode, PayloadDoesNotPerturbTiming) {
  const MachineSpec spec = TwoNodeSpec(4);
  const HierConfig cfg;
  EXPECT_EQ(ValidateHierAllGather(spec, 8, 64 << 10, 4, cfg).makespan,
            SimulateHierAllGather(spec, 8, 64 << 10, cfg));
  EXPECT_EQ(ValidateHierReduceScatter(spec, 8, 64 << 10, 4, cfg).makespan,
            SimulateHierReduceScatter(spec, 8, 64 << 10, cfg));
  rt::World timing(spec, rt::ExecMode::kTimingOnly);
  DpAllReduce ar(timing, 8, 64 << 10, cfg);
  const TimeNs dp_timing = timing.RunSpmd(
      [&](rt::RankCtx& ctx) -> sim::Coro { co_await ar.Run(ctx); });
  EXPECT_EQ(ValidateDpAllReduce(spec, 8, 64 << 10, 4, cfg).makespan,
            dp_timing);
}

// ---------------------------------------------------------------------------
// §4.2 fault injection on the NIC rail stage
// ---------------------------------------------------------------------------

TEST(FaultInjection, EagerRailPublishCaughtOnHierAllGather) {
  HierConfig fault;
  fault.unsafe_rail_src = 0;
  fault.unsafe_rail_chunk = 0;
  const PayloadReport r =
      ValidateHierAllGather(TwoNodeSpec(8), 6, 16 << 10, 8, fault);
  EXPECT_GE(r.violations, 1u);
}

TEST(FaultInjection, EagerRailPublishCaughtOnHierReduceScatter) {
  HierConfig fault;
  fault.unsafe_rail_src = 3;
  fault.unsafe_rail_chunk = 1;
  const PayloadReport r =
      ValidateHierReduceScatter(TwoNodeSpec(8), 12, 16 << 10, 8, fault);
  EXPECT_GE(r.violations, 1u);
}

TEST(FaultInjection, EagerRailPublishCaughtOnDpAllReduce) {
  HierConfig fault;
  fault.unsafe_rail_src = 8;
  fault.unsafe_rail_chunk = 0;
  const PayloadReport r =
      ValidateDpAllReduce(TwoNodeSpec(8), 16, 16 << 10, 8, fault);
  EXPECT_GE(r.violations, 1u);
}

// The unsafe_rail_* knobs are a shim over sim::FaultPlan::ReorderRailChunk:
// the same reorder injected through a World-attached plan must be caught
// identically, with the legacy knobs left untouched.
TEST(FaultInjection, ReorderViaWorldPlanMatchesLegacyKnob) {
  sim::FaultPlan plan;
  plan.ReorderRailChunk(/*src_rank=*/0, /*chunk=*/0);
  const PayloadReport r =
      ValidateHierAllGather(TwoNodeSpec(8), 6, 16 << 10, 8, HierConfig{},
                            &plan);
  EXPECT_GE(r.violations, 1u);
}

// ---------------------------------------------------------------------------
// Fault plans: retry, failover, determinism
// ---------------------------------------------------------------------------

// A NIC edge that drops every attempt must surface as a FaultError naming
// the link role, sending rank, and chunk — not as a bare deadlock.
TEST(FaultPlan, ExhaustedRetriesSurfaceNamedFaultError) {
  const MachineSpec spec = TwoNodeSpec(8);
  sim::FaultPlan plan;
  // Drop every attempt rank 0's rail stream can make toward its rail peer
  // (2 chunks x 3 attempts each fit in the first 8 edge ordinals).
  for (uint64_t ord = 0; ord < 8; ++ord) {
    plan.DropTransfer("nic", /*src=*/0, /*dst=*/8, ord);
  }
  sim::RetryPolicy rp;
  rp.max_retries = 2;
  plan.set_retry(rp);
  rt::World world(spec, rt::ExecMode::kTimingOnly);
  world.set_fault_plan(&plan);
  HierAllGather ag(world, 6, 16 << 10, HierConfig{});
  try {
    world.RunSpmd([&](rt::RankCtx& ctx) -> sim::Coro {
      co_await ag.Run(ctx);
    });
    FAIL() << "expected FaultError";
  } catch (const sim::FaultError& e) {
    EXPECT_NE(e.role().find("hier_ag"), std::string::npos) << e.role();
    EXPECT_GE(e.rank(), 0);
    EXPECT_LT(e.rank(), spec.num_devices);
    EXPECT_GE(e.chunk(), 0);
    EXPECT_EQ(e.attempts(), 3);  // 1 + max_retries
    EXPECT_NE(std::string(e.what()).find("chunk dropped"),
              std::string::npos);
  }
}

// Seeded transient mixes: every collective stays bit-exact with zero
// checker violations while the retry path is genuinely exercised, and the
// same seed replays the identical timeline.
TEST(FaultPlan, TransientMixKeepsCollectivesBitExactAndDeterministic) {
  const MachineSpec spec = TwoNodeSpec(8);
  sim::FaultPlan plan;
  plan.RandomTransients("nic", /*seed=*/7, /*drop_prob=*/0.1,
                        /*spike_prob=*/0.1, /*spike_mult=*/3.0);
  plan.RandomTransients("nvlink", /*seed=*/8, /*drop_prob=*/0.05,
                        /*spike_prob=*/0.1, /*spike_mult=*/2.0);
  const PayloadReport a =
      ValidateHierReduceScatter(spec, 24, 64 << 10, 8, HierConfig{}, &plan);
  EXPECT_TRUE(a.ok());
  EXPECT_GT(a.faults.drops, 0u);
  EXPECT_GT(a.faults.retries, 0u);
  const PayloadReport b =
      ValidateHierReduceScatter(spec, 24, 64 << 10, 8, HierConfig{}, &plan);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.faults.drops, b.faults.drops);
  EXPECT_EQ(a.faults.retries, b.faults.retries);
}

// Killing one of two NIC rails at t=0: the rail scheduler re-chunks all
// traffic onto the survivor, the run completes bit-exactly, and the NIC
// stage pays at most the surviving-bandwidth factor.
TEST(FaultPlan, RailDeathFailsOverBitExact) {
  MachineSpec spec = TwoNodeSpec(8);
  spec.nic_rails = 2;
  HierConfig cfg;
  cfg.nic_chunk_tiles = 2;  // 12 tiles -> 6 NIC chunks per stream
  cfg.staging_depth = 6;
  const PayloadReport clean =
      ValidateHierAllGather(spec, 12, 256 << 10, 8, cfg);
  ASSERT_TRUE(clean.ok());
  sim::FaultPlan death;
  death.DegradeRail("nic", /*port=*/-1, /*rail=*/1, /*at=*/0,
                    /*fraction=*/0.0);
  const PayloadReport r =
      ValidateHierAllGather(spec, 12, 256 << 10, 8, cfg, &death);
  EXPECT_TRUE(r.ok());
  // One dead rail of two leaves half the NIC bandwidth: the whole run can
  // cost at most 2x the fault-free makespan (plus pipeline headroom).
  EXPECT_LE(static_cast<double>(r.makespan),
            2.1 * static_cast<double>(clean.makespan));
  EXPECT_GT(r.makespan, clean.makespan);
}

// ---------------------------------------------------------------------------
// Link-role refactor: pinned pre-refactor makespans
// ---------------------------------------------------------------------------

// The collectives were rewritten on the builder layer's tile-centric link
// roles (NicRailRole / NvlinkRingRole streams). The refactor must be
// behavior-preserving: these exact makespans were recorded from the
// pre-refactor implementation (PR 4) and must not drift by a nanosecond.
TEST(LinkRoles, RefactoredCollectivesKeepPinnedMakespans) {
  const MachineSpec two = MachineSpec::H800x16();
  MachineSpec three = MachineSpec::H800x8();
  three.num_devices = 6;
  three.devices_per_node = 2;
  const HierConfig def;
  HierConfig odd;
  odd.nic_chunk_tiles = 3;
  odd.intra_chunk_tiles = 5;
  odd.staging_depth = 4;
  odd.intra_channels = 2;
  EXPECT_EQ(SimulateHierAllGather(two, 32, 512 << 10, def), 1875515);
  EXPECT_EQ(SimulateHierReduceScatter(two, 32, 512 << 10, def), 1991542);
  EXPECT_EQ(SimulateFlatAllGather(two, 32, 512 << 10, def), 5654920);
  EXPECT_EQ(SimulateFlatReduceScatter(two, 32, 512 << 10, def), 5669796);
  EXPECT_EQ(SimulateHierAllGather(two, 24, 64 << 10, odd), 264898);
  EXPECT_EQ(SimulateHierReduceScatter(two, 24, 64 << 10, odd), 266257);
  EXPECT_EQ(SimulateHierAllGather(three, 5, 16 << 10, def), 37189);
  EXPECT_EQ(SimulateHierReduceScatter(three, 5, 16 << 10, def), 38601);
  const tl::TuneCandidate c = DefaultDpSyncCandidate();
  EXPECT_EQ(SimulateDpSync(two, 128ull << 20, c), 2839968);
  EXPECT_EQ(SimulateDpSync(three, 48ull << 20, c), 1433104);
}

// ---------------------------------------------------------------------------
// HierConfig validation
// ---------------------------------------------------------------------------

TEST(HierConfigValidation, RejectsNonPositiveKnobsUpFront) {
  const MachineSpec spec = TwoNodeSpec(4);
  rt::World world(spec, rt::ExecMode::kTimingOnly);
  HierConfig bad_nic;
  bad_nic.nic_chunk_tiles = 0;
  EXPECT_THROW(HierAllGather(world, 8, 1 << 20, bad_nic), Error);
  HierConfig bad_staging;
  bad_staging.staging_depth = -2;
  EXPECT_THROW(HierReduceScatter(world, 8, 1 << 20, bad_staging), Error);
  HierConfig bad_intra;
  bad_intra.intra_chunk_tiles = 0;
  EXPECT_THROW(DpAllReduce(world, 8, 1 << 20, bad_intra), Error);
  HierConfig bad_channels;
  bad_channels.intra_channels = 0;
  EXPECT_THROW(FlatAllGather(world, 8, 1 << 20, bad_channels), Error);
  HierConfig bad_reduce;
  bad_reduce.reduce_sms = 0;
  EXPECT_THROW(FlatReduceScatter(world, 8, 1 << 20, bad_reduce), Error);
  // The message names the offending knob instead of a chunk-loop internal.
  try {
    HierAllGather ag(world, 8, 1 << 20, bad_nic);
    FAIL() << "expected validation to throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("nic_chunk_tiles"),
              std::string::npos);
  }
}

TEST(HierConfigValidation, RejectsMismatchedPayloadElems) {
  const MachineSpec spec = TwoNodeSpec(2);
  rt::World world(spec, rt::ExecMode::kFunctional);
  const int64_t tiles = 4;
  HierAllGather ag(world, tiles, 16 << 10, HierConfig());
  // tile_elems = 8 requires in[r] of 32 elems; allocate 16 instead.
  std::vector<rt::Buffer*> in = world.AllocSymmetric("in", tiles * 4);
  std::vector<rt::Buffer*> out =
      world.AllocSymmetric("out", world.size() * tiles * 8);
  try {
    ag.AttachPayload(in, out, /*tile_elems=*/8);
    FAIL() << "expected AttachPayload to throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("tile_elems"), std::string::npos);
  }
  HierAllGather ag2(world, tiles, 16 << 10, HierConfig());
  EXPECT_THROW(ag2.AttachPayload(in, out, /*tile_elems=*/0), Error);
}

// ---------------------------------------------------------------------------
// Fused GEMM + hierarchical ReduceScatter (kernels/gemm_hier_rs)
// ---------------------------------------------------------------------------

namespace fused {

tl::GemmHierRsConfig SmallCfg(int ranks) {
  tl::GemmHierRsConfig cfg;
  cfg.m = static_cast<int64_t>(ranks) * 8;
  cfg.k = 8;
  cfg.n = 8;
  cfg.gemm = {4, 8, 4};
  cfg.rs_block_m = 4;
  cfg.nic_chunk_blocks = 2;
  return cfg;
}

}  // namespace fused

// The acceptance gate at test granularity: at 2x8 the fused kernel beats
// the layer-level GEMM-then-HierRS compose on simulated makespan, with a
// bit-exact, violation-free functional run.
TEST(GemmHierRs, BeatsLayerComposeAtTwoByEight) {
  const MachineSpec spec = MachineSpec::H800x16();
  const tl::MlpPartShape shape{16384, 256, 4096};
  const tl::TuneCandidate seed = DefaultGemmHierRsCandidate(shape, 16);
  const TimeNs fused = SimulateGemmHierRs(spec, shape, seed);
  const TimeNs compose = SimulateGemmThenHierRs(spec, shape, seed);
  std::printf("fused %.3f ms vs compose %.3f ms\n", fused / 1e6,
              compose / 1e6);
  EXPECT_GT(fused, 0);
  EXPECT_LT(fused, compose);
}

TEST(GemmHierRs, PayloadBitExactAtTwoByEight) {
  const PayloadReport r =
      ValidateGemmHierRs(MachineSpec::H800x16(), fused::SmallCfg(16));
  EXPECT_TRUE(r.bit_exact);
  EXPECT_EQ(r.violations, 0u);
}

// M not divisible by nic_chunk_blocks * rs_block_m: the last rail chunk is
// ragged (8 + 4 rows per 12-row block) and must stay bit-exact, as must a
// three-node topology (multi-peer rail).
TEST(GemmHierRs, RaggedRailChunksStayBitExact) {
  MachineSpec spec = MachineSpec::H800x8();
  spec.num_devices = 8;
  spec.devices_per_node = 4;
  tl::GemmHierRsConfig cfg = fused::SmallCfg(8);
  cfg.m = 8 * 12;  // m_per_rank = 12 = 3 ring chunks; rail chunk = 2 chunks
  const PayloadReport r = ValidateGemmHierRs(spec, cfg);
  EXPECT_TRUE(r.bit_exact);
  EXPECT_EQ(r.violations, 0u);
  MachineSpec three = MachineSpec::H800x8();
  three.num_devices = 6;
  three.devices_per_node = 2;
  tl::GemmHierRsConfig tcfg = fused::SmallCfg(6);
  tcfg.m = 6 * 12;
  const PayloadReport rt = ValidateGemmHierRs(three, tcfg);
  EXPECT_TRUE(rt.bit_exact);
  EXPECT_EQ(rt.violations, 0u);
}

// Degenerate topologies: at 1 x 8 there is no rail stage and the fused
// kernel *is* the single-node layer kernel — the makespan must equal
// GemmRs with the same configuration exactly. At N x 1 there is no ring
// (the rail feeds off the GEMM producer channels); 1 x 1 is GEMM only.
TEST(GemmHierRs, DegenerateTopologies) {
  const MachineSpec one = MachineSpec::H800x8();
  tl::GemmHierRsConfig cfg;
  cfg.m = 2048;
  cfg.k = 512;
  cfg.n = 2048;
  cfg.gemm = {128, 256, 256};
  cfg.rs_block_m = 128;
  {
    rt::World w1(one, rt::ExecMode::kTimingOnly);
    tl::GemmHierRs fused_kernel(w1, cfg);
    const TimeNs t1 = w1.RunSpmd([&](rt::RankCtx& ctx) -> sim::Coro {
      co_await fused_kernel.Run(ctx);
    });
    tl::GemmRsConfig g;
    g.m = cfg.m;
    g.k = cfg.k;
    g.n = cfg.n;
    g.gemm = cfg.gemm;
    g.rs_block_m = cfg.rs_block_m;
    g.comm_sms = cfg.comm_sms;
    rt::World w2(one, rt::ExecMode::kTimingOnly);
    tl::GemmRs ref(w2, g);
    const TimeNs t2 = w2.RunSpmd(
        [&](rt::RankCtx& ctx) -> sim::Coro { co_await ref.Run(ctx); });
    EXPECT_EQ(t1, t2);
  }
  MachineSpec two_by_one = MachineSpec::H800x8();
  two_by_one.num_devices = 2;
  two_by_one.devices_per_node = 1;
  const PayloadReport r2 = ValidateGemmHierRs(two_by_one, fused::SmallCfg(2));
  EXPECT_TRUE(r2.bit_exact);
  EXPECT_EQ(r2.violations, 0u);
  const PayloadReport r1 =
      ValidateGemmHierRs(MachineSpec::Test(1), fused::SmallCfg(1));
  EXPECT_TRUE(r1.bit_exact);
  EXPECT_EQ(r1.violations, 0u);
}

// The ROADMAP item this kernel closes: a RolePlan role bound to
// FabricBinding::kNic, its channel count clamped by the NIC queue-pair
// budget (blocks double as the stream window).
TEST(GemmHierRs, RailRoleBindsNicFabricUnderBudget) {
  MachineSpec spec = MachineSpec::H800x16();
  spec.nic_queue_pairs = 3;
  rt::World world(spec, rt::ExecMode::kTimingOnly);
  tl::GemmHierRsConfig cfg = fused::SmallCfg(16);
  cfg.m = 16 * 32;  // enough rail chunks that the budget is the binder
  cfg.nic_chunk_blocks = 1;
  cfg.staging_depth = 8;  // wants 8, budget grants 3
  tl::GemmHierRs kernel(world, cfg);
  EXPECT_EQ(kernel.rail_blocks(), 3);
  // With fewer work items than the granted window, work binds instead.
  tl::GemmHierRsConfig tiny = fused::SmallCfg(16);  // one rail chunk/peer
  rt::World world2(spec, rt::ExecMode::kTimingOnly);
  tl::GemmHierRs kernel2(world2, tiny);
  EXPECT_EQ(kernel2.rail_blocks(), 1);
  bool found_nic = false;
  for (const tl::Role& role : kernel.spec().roles) {
    if (role.fabric == tl::FabricBinding::kNic) {
      found_nic = true;
      EXPECT_EQ(role.name, "rail");
      EXPECT_LE(role.fabric_channels, 3);
    }
  }
  EXPECT_TRUE(found_nic);
}

TEST(GemmHierRs, TunedConfigNeverLosesToSeed) {
  const MachineSpec spec = MachineSpec::H800x16();
  const tl::MlpPartShape shape{8192, 128, 1024};
  const tl::TuneCandidate seed = DefaultGemmHierRsCandidate(shape, 16);
  const TimeNs seed_cost = SimulateGemmHierRs(spec, shape, seed);
  const tl::TuneResult r = TuneGemmHierRs(
      spec, shape, tl::TuningSpace::GemmHierRs(), seed);
  EXPECT_LE(r.best_cost, seed_cost);
  EXPECT_EQ(r.best_cost, SimulateGemmHierRs(spec, shape, r.best));
}

TEST(DpSync, LayerGradBytesMatchesLayerStructure) {
  const models::ModelConfig dense = models::GetModel("LLaMA2-7B");
  // 4h^2 (attn) + 2*h*inner (MLP), bf16, divided by tp.
  const uint64_t expect =
      2ull * (4ull * 4096 * 4096 + 2ull * 4096 * 11008) / 8;
  EXPECT_EQ(LayerGradBytes(dense, 8), expect);
  const models::ModelConfig moe = models::GetModel("Mixtral-8x7B");
  EXPECT_GT(LayerGradBytes(moe, 8), LayerGradBytes(dense, 8));
}

}  // namespace
}  // namespace tilelink::multinode
