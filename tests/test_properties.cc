// Property-style tests across the system: overlap never changes numerics,
// simulated overlap time is bounded by its parts, signals are monotone,
// routed tokens are conserved, determinism holds under configuration
// sweeps, cost model is monotone in its inputs.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compute/gemm.h"
#include "compute/moe_routing.h"
#include "runtime/world.h"
#include "sim/cost_model.h"
#include "tensor/tensor_ops.h"
#include "tilelink/kernels/ag_gemm.h"
#include "tilelink/kernels/gemm_rs.h"

namespace tilelink {
namespace {

using rt::ExecMode;
using rt::RankCtx;
using rt::World;

// -- Cost model properties ------------------------------------------------

TEST(CostModelProps, TileStepMonotoneInEveryDimension) {
  const sim::CostModel cost(sim::MachineSpec::H800x8());
  EXPECT_LE(cost.GemmTileStep(64, 128, 32), cost.GemmTileStep(128, 128, 32));
  EXPECT_LE(cost.GemmTileStep(128, 64, 32), cost.GemmTileStep(128, 128, 32));
  EXPECT_LE(cost.GemmTileStep(128, 128, 32), cost.GemmTileStep(128, 128, 64));
}

TEST(CostModelProps, TotalGemmTimeInvariantInBk) {
  // The coarse-tiling trick the benches rely on: total time is (nearly)
  // independent of bk because step cost is linear in bk.
  const sim::CostModel cost(sim::MachineSpec::H800x8());
  const compute::GemmTiling fine{128, 256, 64};
  const compute::GemmTiling coarse{128, 256, 512};
  const sim::TimeNs t_fine =
      compute::AnalyticGemmTime(cost, 4096, 2048, 4096, fine, 132);
  const sim::TimeNs t_coarse =
      compute::AnalyticGemmTime(cost, 4096, 2048, 4096, coarse, 132);
  const double rel = std::abs(static_cast<double>(t_fine - t_coarse)) /
                     static_cast<double>(t_fine);
  EXPECT_LT(rel, 0.05) << t_fine << " vs " << t_coarse;
}

TEST(CostModelProps, EfficiencyRampsWithTileArea) {
  const sim::CostModel cost(sim::MachineSpec::H800x8());
  EXPECT_LT(cost.GemmEfficiency(32, 32), cost.GemmEfficiency(64, 64));
  EXPECT_LT(cost.GemmEfficiency(64, 64), cost.GemmEfficiency(128, 256));
  EXPECT_LE(cost.GemmEfficiency(128, 256), cost.GemmEfficiency(256, 256));
}

TEST(CostModelProps, MemoryBoundScalesWithBytesAndSms) {
  const sim::CostModel cost(sim::MachineSpec::H800x8());
  EXPECT_LT(cost.MemoryBound(1 << 20, 64), cost.MemoryBound(1 << 22, 64));
  EXPECT_LE(cost.MemoryBound(1 << 22, 64), cost.MemoryBound(1 << 22, 8));
}

// -- Overlap timing bounds ------------------------------------------------

struct Pieces {
  sim::TimeNs overlap;
  sim::TimeNs comm_ish;  // bytes / link rate lower bound
};

TEST(OverlapProps, OverlapIsBoundedBelowByWireTime) {
  const int R = 4;
  World world(sim::MachineSpec::Test(R, 16), ExecMode::kTimingOnly);
  tl::AgGemmConfig cfg;
  cfg.m = 512 * R;
  cfg.k = 512;
  cfg.n = 256;
  cfg.gemm = compute::GemmTiling{64, 64, 64};
  cfg.comm_tile_m = 64;
  cfg.comm = tl::CommResource::kSmPull;
  cfg.comm_sms = 4;
  tl::AgGemm kernel(world, cfg);
  const sim::TimeNs overlap = world.RunSpmd(
      [&](RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });
  // Each rank must ingest (R-1)/R of the gathered tensor over its port.
  const double bytes = static_cast<double>(cfg.m) * cfg.k * 2.0 * (R - 1) / R;
  const sim::TimeNs wire = static_cast<sim::TimeNs>(
      bytes / world.spec().nvlink_gbps);
  EXPECT_GE(overlap, wire);
}

TEST(OverlapProps, MoreCommSmsNeverHelpsComputeBoundKernel) {
  // With a heavily compute-bound shape, stealing more SMs for comm must not
  // make the kernel faster.
  auto run = [&](int comm_sms) {
    World world(sim::MachineSpec::Test(4, 16), ExecMode::kTimingOnly);
    tl::AgGemmConfig cfg;
    cfg.m = 1024;
    cfg.k = 2048;
    cfg.n = 1024;
    cfg.gemm = compute::GemmTiling{64, 64, 256};
    cfg.comm_tile_m = 64;
    cfg.comm = tl::CommResource::kSmPull;
    cfg.comm_sms = comm_sms;
    tl::AgGemm kernel(world, cfg);
    return world.RunSpmd(
        [&](RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });
  };
  EXPECT_LE(run(2), run(10));
}

// -- Numerics invariance across configurations ----------------------------

TEST(NumericsProps, AllCommResourcesProduceIdenticalResults) {
  const int R = 4;
  std::vector<float> reference;
  for (tl::CommResource res :
       {tl::CommResource::kSmPull, tl::CommResource::kSmPush,
        tl::CommResource::kDma}) {
    World world(sim::MachineSpec::Test(R, 16), ExecMode::kFunctional);
    tl::AgGemmConfig cfg;
    cfg.m = 128;
    cfg.k = 32;
    cfg.n = 32;
    cfg.gemm = compute::GemmTiling{32, 16, 16};
    cfg.comm_tile_m = 16;
    cfg.comm = res;
    cfg.comm_sms = 4;
    tl::AgGemm kernel(world, cfg);
    Rng rng(99);  // identical data for every variant
    for (int r = 0; r < R; ++r) {
      FillRandom(kernel.a_shards()[static_cast<size_t>(r)], rng, 0.5f);
      FillRandom(kernel.b()[static_cast<size_t>(r)], rng, 0.5f);
    }
    world.RunSpmd(
        [&](RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });
    std::vector<float> got;
    for (int64_t i = 0; i < kernel.c()[0].numel(); ++i) {
      got.push_back(kernel.c()[0].buffer()->data()[static_cast<size_t>(i)]);
    }
    if (reference.empty()) {
      reference = got;
    } else {
      EXPECT_EQ(reference, got) << "variant " << static_cast<int>(res);
    }
  }
}

TEST(NumericsProps, RsBlockSizeDoesNotChangeNumerics) {
  const int R = 2;
  std::vector<float> reference;
  for (int rs_block : {32, 64}) {
    World world(sim::MachineSpec::Test(R, 16), ExecMode::kFunctional);
    tl::GemmRsConfig cfg;
    cfg.m = 128;
    cfg.k = 16;
    cfg.n = 24;
    cfg.gemm = compute::GemmTiling{32, 8, 8};
    cfg.rs_block_m = rs_block;
    cfg.comm_sms = 2;
    tl::GemmRs kernel(world, cfg);
    Rng rng(123);
    for (int r = 0; r < R; ++r) {
      FillRandom(kernel.a()[static_cast<size_t>(r)], rng, 0.3f);
      FillRandom(kernel.b()[static_cast<size_t>(r)], rng, 0.3f);
    }
    world.RunSpmd(
        [&](RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });
    std::vector<float> got;
    for (int64_t i = 0; i < kernel.out()[0].numel(); ++i) {
      got.push_back(
          kernel.out()[0].buffer()->data()[static_cast<size_t>(i)]);
    }
    if (reference.empty()) {
      reference = got;
    } else {
      // Ring accumulation order is identical (rank order), so results are
      // bit-identical across chunk sizes.
      EXPECT_EQ(reference, got) << "rs_block " << rs_block;
    }
  }
}

// -- Signal / flag properties ---------------------------------------------

TEST(SignalProps, FlagValueNeverDecreases) {
  sim::Simulator sim;
  sim::Flag flag(&sim, "f");
  Rng rng(5);
  uint64_t last = 0;
  for (int i = 0; i < 200; ++i) {
    if (rng.NextU64(2) == 0) {
      flag.Set(rng.NextU64(100));
    } else {
      flag.Add(rng.NextU64(4));
    }
    EXPECT_GE(flag.value(), last);
    last = flag.value();
  }
}

// -- Routing conservation --------------------------------------------------

TEST(RoutingProps, TokensConservedAcrossRandomConfigs) {
  Rng rng(7);
  for (int iter = 0; iter < 20; ++iter) {
    const int64_t tokens = 8 + static_cast<int64_t>(rng.NextU64(200));
    const int experts = 2 + static_cast<int>(rng.NextU64(30));
    const int topk = 1 + static_cast<int>(
        rng.NextU64(static_cast<uint64_t>(std::min(experts, 5))));
    compute::MoeRouting r =
        compute::RandomRouting(tokens, experts, topk, rng);
    r.CheckValid();
    int64_t total = 0;
    for (int e = 0; e < experts; ++e) total += r.expert_count(e);
    EXPECT_EQ(total, tokens * topk);
  }
}

// -- Determinism under repetition ------------------------------------------

TEST(DeterminismProps, RepeatedWorldsAreBitIdentical) {
  auto run = []() {
    World world(sim::MachineSpec::Test(4, 8), ExecMode::kFunctional);
    tl::GemmRsConfig cfg;
    cfg.m = 128;
    cfg.k = 16;
    cfg.n = 16;
    cfg.gemm = compute::GemmTiling{32, 16, 8};
    cfg.rs_block_m = 32;
    cfg.comm_sms = 2;
    tl::GemmRs kernel(world, cfg);
    Rng rng(17);
    for (int r = 0; r < 4; ++r) {
      FillRandom(kernel.a()[static_cast<size_t>(r)], rng, 0.3f);
      FillRandom(kernel.b()[static_cast<size_t>(r)], rng, 0.3f);
    }
    const sim::TimeNs t = world.RunSpmd(
        [&](RankCtx& ctx) -> sim::Coro { co_await kernel.Run(ctx); });
    return std::make_pair(t, Sum(kernel.out()[2]));
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace tilelink
