// Serving-layer tests.
//
// 1. Traffic generator: bitwise seed-determinism, range/ordering invariants.
// 2. Shape bucketing: rounds up only, idempotent, zero axes preserved.
// 3. Continuous-batching scheduler: every request finishes exactly once,
//    slot/prefill budgets hold on every step, token conservation, bitwise
//    deterministic schedules, oversized prompts admitted alone.
// 4. E2eEstimator::ServingStepTime: ragged decode widths m = 1..32 (dense
//    and MoE) route through the padded fused kernels without infeasible
//    crashes, tuned and untuned, tuned never slower than untuned defaults.
// 5. ConfigService / TunedConfigCache: stats aggregation, tuned-vs-seed
//    geomean >= 1, LRU eviction under SetCapacity, serialization of the new
//    seed_cost/full_evals fields, and old-format cache files still loading.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "models/model_zoo.h"
#include "models/transformer.h"
#include "serving/config_service.h"
#include "serving/scheduler.h"
#include "serving/serving_sim.h"
#include "serving/shape_bucket.h"
#include "serving/traffic_gen.h"
#include "tilelink/builder/tuned_config_cache.h"

namespace tilelink::serving {
namespace {

// ---------------------------------------------------------------------- //
// Traffic generator
// ---------------------------------------------------------------------- //

TrafficConfig SmallTraffic(uint64_t seed) {
  TrafficConfig cfg;
  cfg.seed = seed;
  cfg.num_requests = 64;
  cfg.num_models = 3;
  return cfg;
}

TEST(TrafficGenTest, SameSeedIsBitwiseIdentical) {
  const std::vector<Request> a = GenerateTraffic(SmallTraffic(7));
  const std::vector<Request> b = GenerateTraffic(SmallTraffic(7));
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a, b);
  EXPECT_EQ(TraceString(a), TraceString(b));
}

TEST(TrafficGenTest, DifferentSeedsDiffer) {
  EXPECT_NE(TraceString(GenerateTraffic(SmallTraffic(7))),
            TraceString(GenerateTraffic(SmallTraffic(8))));
}

TEST(TrafficGenTest, DrawsRespectConfigRanges) {
  const TrafficConfig cfg = SmallTraffic(3);
  const std::vector<Request> reqs = GenerateTraffic(cfg);
  ASSERT_EQ(reqs.size(), static_cast<std::size_t>(cfg.num_requests));
  sim::TimeNs prev_arrival = 0;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const Request& r = reqs[i];
    EXPECT_EQ(r.id, static_cast<int64_t>(i));  // numbered in arrival order
    EXPECT_GE(r.arrival, prev_arrival);        // nondecreasing arrivals
    prev_arrival = r.arrival;
    EXPECT_GE(r.model_index, 0);
    EXPECT_LT(r.model_index, cfg.num_models);
    EXPECT_GE(r.prompt_tokens, cfg.min_prompt);
    EXPECT_LE(r.prompt_tokens, cfg.max_prompt);
    EXPECT_GE(r.gen_tokens, cfg.min_gen);
    EXPECT_LE(r.gen_tokens, cfg.max_gen);
  }
  // The Poisson-like gaps should actually spread the trace out: the last
  // arrival is far from zero and not all gaps are equal.
  EXPECT_GT(reqs.back().arrival, cfg.mean_interarrival);
}

// ---------------------------------------------------------------------- //
// Shape bucketing
// ---------------------------------------------------------------------- //

TEST(ShapeBucketTest, BucketUpCoversWithPowersOfTwo) {
  EXPECT_EQ(BucketUp(1, 16), 16);
  EXPECT_EQ(BucketUp(16, 16), 16);
  EXPECT_EQ(BucketUp(17, 16), 32);
  EXPECT_EQ(BucketUp(100, 16), 128);
  EXPECT_EQ(BucketUp(5, 1), 8);
}

TEST(ShapeBucketTest, NeverShrinksAndPreservesZeroAxes) {
  const BucketPolicy policy;
  for (int64_t prefill : {0LL, 1LL, 17LL, 300LL, 2048LL}) {
    for (int64_t decode : {0LL, 1LL, 3LL, 32LL}) {
      if (prefill == 0 && decode == 0) continue;
      models::ServingStep s{prefill, decode, decode > 0 ? 777 : 0};
      const models::ServingStep b = BucketStep(s, policy);
      EXPECT_GE(b.prefill_tokens, s.prefill_tokens);
      EXPECT_GE(b.decode_requests, s.decode_requests);
      EXPECT_GE(b.kv_len, s.kv_len);
      // A decode-only step must not grow a phantom prefill (and vice
      // versa): zero axes stay zero.
      EXPECT_EQ(b.prefill_tokens == 0, s.prefill_tokens == 0);
      EXPECT_EQ(b.decode_requests == 0, s.decode_requests == 0);
      // Idempotent: a bucketed shape is its own bucket, so near-miss raw
      // shapes converge to one cache key.
      EXPECT_EQ(BucketStep(b, policy), b);
    }
  }
}

// ---------------------------------------------------------------------- //
// Continuous-batching scheduler
// ---------------------------------------------------------------------- //

// Constant step cost keeps schedule checks independent of the estimator.
sim::TimeNs FlatCost(const models::ServingStep&) { return sim::Ms(1); }

TEST(SchedulerTest, EveryRequestFinishesAndBudgetsHold) {
  TrafficConfig tcfg = SmallTraffic(11);
  tcfg.num_models = 1;
  const std::vector<Request> reqs = GenerateTraffic(tcfg);
  SchedulerConfig cfg;
  cfg.max_running = 4;
  cfg.max_step_prefill = 1024;
  ContinuousBatchScheduler sched(cfg, reqs);
  const std::vector<RequestOutcome> out = sched.Run(FlatCost);

  ASSERT_EQ(out.size(), reqs.size());
  int64_t want_tokens = 0;
  for (const Request& r : reqs) want_tokens += r.gen_tokens;
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].id, static_cast<int64_t>(i));  // sorted by id, no dups
    EXPECT_GE(out[i].admitted, out[i].arrival);
    EXPECT_GT(out[i].finished, out[i].admitted);
    EXPECT_GT(out[i].latency(), 0);
  }
  int64_t got_tokens = 0;
  sim::TimeNs prev_end = 0;
  for (const StepRecord& s : sched.steps()) {
    EXPECT_GE(s.start, prev_end);  // steps never overlap
    prev_end = s.start + s.cost;
    EXPECT_GT(s.cost, 0);
    EXPECT_GT(s.shape.prefill_tokens + s.shape.decode_requests, 0);
    EXPECT_LE(s.shape.decode_requests, cfg.max_running);
    // The prefill budget holds whenever a step packs more than one prompt
    // (a single oversized prompt is legitimately admitted alone).
    if (s.admitted > 1) {
      EXPECT_LE(s.shape.prefill_tokens, cfg.max_step_prefill);
    }
    // Token conservation: fresh prefills emit their first token, every
    // decoder emits one.
    got_tokens += s.admitted + s.shape.decode_requests;
  }
  EXPECT_EQ(got_tokens, want_tokens);
}

TEST(SchedulerTest, ScheduleIsDeterministic) {
  const std::vector<Request> reqs = GenerateTraffic(SmallTraffic(5));
  SchedulerConfig cfg;
  auto run = [&] {
    ContinuousBatchScheduler sched(cfg, reqs);
    sched.Run(FlatCost);
    return sched.steps();
  };
  const std::vector<StepRecord> a = run();
  const std::vector<StepRecord> b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].shape, b[i].shape) << i;
    EXPECT_EQ(a[i].start, b[i].start) << i;
    EXPECT_EQ(a[i].cost, b[i].cost) << i;
    EXPECT_EQ(a[i].admitted, b[i].admitted) << i;
    EXPECT_EQ(a[i].finished, b[i].finished) << i;
  }
}

TEST(SchedulerTest, OversizedPromptIsAdmittedAloneAndNeverSplit) {
  // Request 1's prompt exceeds the whole budget: it must wait for a
  // prefill-empty step and then be admitted alone (prompts are atomic).
  std::vector<Request> reqs;
  reqs.push_back(Request{0, 0, 0, 100, 2});
  reqs.push_back(Request{1, 0, 0, 5000, 2});
  reqs.push_back(Request{2, 0, 0, 200, 2});
  SchedulerConfig cfg;
  cfg.max_running = 8;
  cfg.max_step_prefill = 1024;
  ContinuousBatchScheduler sched(cfg, reqs);
  const std::vector<RequestOutcome> out = sched.Run(FlatCost);
  ASSERT_EQ(out.size(), 3u);
  for (const RequestOutcome& o : out) EXPECT_GT(o.finished, 0);
  bool saw_oversized = false;
  for (const StepRecord& s : sched.steps()) {
    if (s.shape.prefill_tokens >= 5000) {
      saw_oversized = true;
      EXPECT_EQ(s.shape.prefill_tokens, 5000);  // admitted alone
    }
  }
  EXPECT_TRUE(saw_oversized);
}

TEST(SchedulerTest, IdleReplicaJumpsToNextArrival) {
  std::vector<Request> reqs;
  reqs.push_back(Request{0, 0, sim::Ms(100), 64, 1});
  ContinuousBatchScheduler sched(SchedulerConfig{}, reqs);
  const std::vector<RequestOutcome> out = sched.Run(FlatCost);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].admitted, sim::Ms(100));  // no busy-wait steps before
  EXPECT_EQ(sched.steps().size(), 1u);
}

// ---------------------------------------------------------------------- //
// ServingStepTime: ragged shapes through the estimator
// ---------------------------------------------------------------------- //

TEST(ServingStepTimeTest, RaggedDecodeWidthsDense) {
  models::E2eEstimator est(/*tp=*/8, /*batch=*/1, /*seq=*/1,
                           /*two_node=*/false);
  const models::ModelConfig model = models::GetModel("GPT3-6.7B");
  for (int64_t m = 1; m <= 32; ++m) {
    models::ServingStep step{0, m, 512};
    const sim::TimeNs tl = est.ServingStepTime(model, models::Method::kTileLink,
                                               step);
    const sim::TimeNs torch =
        est.ServingStepTime(model, models::Method::kTorch, step);
    EXPECT_GT(tl, 0) << "decode width " << m;
    EXPECT_GT(torch, 0) << "decode width " << m;
  }
}

TEST(ServingStepTimeTest, RaggedDecodeWidthsMoe) {
  models::E2eEstimator est(8, 1, 1, false);
  const models::ModelConfig model = models::GetModel("Mixtral-8x7B");
  ASSERT_TRUE(model.is_moe);
  for (int64_t m = 1; m <= 32; ++m) {
    const sim::TimeNs t = est.ServingStepTime(
        model, models::Method::kTileLink, models::ServingStep{0, m, 1024});
    EXPECT_GT(t, 0) << "decode width " << m;
  }
}

TEST(ServingStepTimeTest, MixedPrefillDecodeAndMemoization) {
  models::E2eEstimator est(8, 1, 1, false);
  const models::ModelConfig model = models::GetModel("LLaMA2-13B");
  const models::ServingStep step{300, 7, 777};
  const sim::TimeNs first =
      est.ServingStepTime(model, models::Method::kTileLink, step);
  EXPECT_GT(first, 0);
  // Memoized: the identical step shape costs the identical time.
  EXPECT_EQ(est.ServingStepTime(model, models::Method::kTileLink, step),
            first);
}

// Attaching a ConfigService routes every serving component through tuned
// configs: never slower than the hand-picked defaults, fully reproducible
// across a fresh estimator on the same service (warm hits only).
TEST(ServingStepTimeTest, TunedViaConfigServiceNeverSlowerAndWarmHits) {
  const models::ModelConfig model = models::GetModel("GPT3-6.7B");
  const models::ServingStep step = BucketStep(models::ServingStep{48, 5, 600});

  models::E2eEstimator untuned(8, 1, 1, false);
  const sim::TimeNs default_time =
      untuned.ServingStepTime(model, models::Method::kTileLink, step);

  ConfigService service(ConfigService::Options{0, /*tune_threads=*/4, true});
  models::E2eEstimator cold(8, 1, 1, false);
  service.Attach(&cold);
  const sim::TimeNs tuned_time =
      cold.ServingStepTime(model, models::Method::kTileLink, step);
  EXPECT_GT(tuned_time, 0);
  EXPECT_LE(tuned_time, default_time);  // seeds anchor every search
  const int64_t cold_misses = service.Stats().misses;
  EXPECT_GT(cold_misses, 0);

  // A fresh replica against the same service reproduces the time without a
  // single new search.
  models::E2eEstimator warm(8, 1, 1, false);
  service.Attach(&warm);
  EXPECT_EQ(warm.ServingStepTime(model, models::Method::kTileLink, step),
            tuned_time);
  const ConfigService::Snapshot stats = service.Stats();
  EXPECT_EQ(stats.misses, cold_misses);
  EXPECT_GT(stats.hits, 0);
  EXPECT_GT(stats.hit_rate, 0.0);
  EXPECT_LE(stats.hit_rate, 1.0);
  EXPECT_GE(stats.tuned_speedup_geomean, 1.0);  // seed-anchored searches
  EXPECT_GT(stats.entries, 0);
  // The laddered searches record their accounting in every entry.
  bool saw_seed_cost = false;
  for (const auto& [key, entry] : service.cache().Entries()) {
    EXPECT_GT(entry.cost, 0) << key;
    if (entry.seed_cost > 0) {
      saw_seed_cost = true;
      EXPECT_LE(entry.cost, entry.seed_cost) << key;
      EXPECT_GT(entry.full_evals, 0) << key;
    }
  }
  EXPECT_TRUE(saw_seed_cost);
}

// ---------------------------------------------------------------------- //
// RunServing: end-to-end reproducibility
// ---------------------------------------------------------------------- //

TEST(RunServingTest, SameSeedSameTraceUntuned) {
  ServingOptions opts;
  opts.models = {models::GetModel("GPT3-6.7B")};
  opts.traffic.seed = 2;
  opts.traffic.num_requests = 6;
  opts.traffic.min_prompt = 64;
  opts.traffic.max_prompt = 256;
  opts.traffic.min_gen = 2;
  opts.traffic.max_gen = 6;
  auto run = [&] {
    models::E2eEstimator est(8, 1, 1, false);
    return RunServing(opts, &est);
  };
  const ServingResult a = run();
  const ServingResult b = run();
  EXPECT_EQ(a.total_requests, 6);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.p50_latency, b.p50_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_GT(a.p50_latency, 0);
  EXPECT_GE(a.p99_latency, a.p50_latency);
}

TEST(RunServingTest, PercentileNearestRank) {
  EXPECT_EQ(Percentile({}, 0.5), 0);
  EXPECT_EQ(Percentile({7}, 0.99), 7);
  EXPECT_EQ(Percentile({30, 10, 20}, 0.0), 10);
  EXPECT_EQ(Percentile({30, 10, 20}, 0.5), 20);
  EXPECT_EQ(Percentile({30, 10, 20}, 1.0), 30);
}

// ---------------------------------------------------------------------- //
// Config service stats + cache eviction / serialization
// ---------------------------------------------------------------------- //

tl::TunedEntry EntryWithCost(sim::TimeNs cost, sim::TimeNs seed_cost = 0,
                             int full_evals = 0) {
  tl::TunedEntry e;
  e.config.comm_tile_m = 128;
  e.cost = cost;
  e.seed_cost = seed_cost;
  e.full_evals = full_evals;
  return e;
}

TEST(ConfigServiceTest, LruEvictionUnderCapacity) {
  tl::TunedConfigCache cache;
  cache.SetCapacity(2);
  cache.Put("a", EntryWithCost(1));
  cache.Put("b", EntryWithCost(2));
  // Touch "a" so "b" is the least recently used.
  (void)cache.GetOrTune("a", [] { return EntryWithCost(0); });
  cache.Put("c", EntryWithCost(3));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Find("a"), nullptr);
  EXPECT_EQ(cache.Find("b"), nullptr);  // evicted as LRU
  EXPECT_NE(cache.Find("c"), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);
  // Shrinking below the live size evicts immediately.
  cache.SetCapacity(1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 2);
}

TEST(ConfigServiceTest, SpeedupGeomeanFromEntries) {
  ConfigService service(ConfigService::Options{});
  // 2x and 0.5x speedups cancel in the geomean; unknown seed costs (old
  // entries) are excluded rather than dragging the stat to zero.
  service.cache().Put("a", EntryWithCost(100, 200, 5));
  service.cache().Put("b", EntryWithCost(200, 100, 5));
  service.cache().Put("c", EntryWithCost(50, 0, 0));  // unknown seed cost
  const ConfigService::Snapshot stats = service.Stats();
  EXPECT_EQ(stats.entries, 3);
  EXPECT_NEAR(stats.tuned_speedup_geomean, 1.0, 1e-9);
}

TEST(CacheSerializationTest, ServingFieldsRoundTrip) {
  tl::TunedConfigCache cache;
  cache.Put("k/1x2/R8.sm132.nv150", EntryWithCost(123, 456, 9));
  tl::TunedConfigCache loaded;
  ASSERT_TRUE(loaded.FromJson(cache.ToJson()));
  const tl::TunedEntry* e = loaded.Find("k/1x2/R8.sm132.nv150");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->cost, 123);
  EXPECT_EQ(e->seed_cost, 456);
  EXPECT_EQ(e->full_evals, 9);
  // Canonical: the round-trip reproduces the document byte for byte.
  EXPECT_EQ(loaded.ToJson(), cache.ToJson());
}

TEST(CacheSerializationTest, OldFormatWithoutServingFieldsStillLoads) {
  // Cache files written before seed_cost_ns/full_evals existed carry only
  // the config knobs and cost_ns; they must parse with the new fields at 0
  // ("unknown"), keeping old warm-start files usable.
  tl::TunedConfigCache cache;
  ASSERT_TRUE(cache.FromJson(
      "{ \"old/8x9/R8.sm132.nv150\": { \"bm\": 64, \"cost_ns\": 777 } }"));
  const tl::TunedEntry* e = cache.Find("old/8x9/R8.sm132.nv150");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->cost, 777);
  EXPECT_EQ(e->seed_cost, 0);
  EXPECT_EQ(e->full_evals, 0);
}

TEST(CacheSerializationTest, WallClockStatsAreNeverSerialized) {
  // warm_start/max_tune wall times are observability only: serializing them
  // would break the bitwise rerun gate on cache files.
  tl::TunedConfigCache cache;
  cache.GetOrTune("k", [] { return EntryWithCost(5, 10, 1); });
  const std::string json = cache.ToJson();
  EXPECT_EQ(json.find("warm_start"), std::string::npos);
  EXPECT_EQ(json.find("max_tune"), std::string::npos);
  EXPECT_GE(cache.stats().warm_start_ns, 0);
}

}  // namespace
}  // namespace tilelink::serving
