// Tests for the tile-centric mappings: the affine fS/fR/fC formulas of §4.1
// against brute force, channel wait derivation, and dynamic lookup tables.
#include <gtest/gtest.h>

#include "tilelink/mapping.h"

namespace tilelink::tl {
namespace {

TEST(StaticMapping, MatchesPaperFormulas) {
  // M=1024, Tmp=64, R=4 ranks, C=2 channels/rank (paper §4.1 example form).
  const int64_t m = 1024;
  const int tile = 64;
  const int ranks = 4;
  const int channels = 2;
  StaticMapping map(m, tile, ranks, channels);
  const int64_t m_per_rank = (m + ranks - 1) / ranks;          // 256
  const int64_t m_per_channel = (m + ranks * channels - 1) / (ranks * channels);  // 128
  for (int64_t t = 0; t < map.num_tiles(); ++t) {
    EXPECT_EQ(map.ShapeRange(t).lo, t * tile);
    EXPECT_EQ(map.ShapeRange(t).hi, std::min<int64_t>(t * tile + tile, m));
    EXPECT_EQ(map.Rank(t), t / (m_per_rank / tile));
    EXPECT_EQ(map.Channel(t), t / (m_per_channel / tile));
  }
  EXPECT_EQ(map.num_tiles(), 16);
  EXPECT_EQ(map.tiles_per_rank(), 4);
  EXPECT_EQ(map.tiles_per_channel(), 2);
  EXPECT_EQ(map.num_channels(), 8);
}

TEST(StaticMapping, RankCoversAllTilesExactly) {
  StaticMapping map(2048, 128, 8, 2);
  std::vector<int> per_rank(8, 0);
  for (int64_t t = 0; t < map.num_tiles(); ++t) {
    per_rank[static_cast<size_t>(map.Rank(t))]++;
  }
  for (int r = 0; r < 8; ++r) EXPECT_EQ(per_rank[static_cast<size_t>(r)], 2);
}

TEST(StaticMapping, TilesInChannelSumsToTotal) {
  StaticMapping map(1536, 64, 4, 3);
  uint64_t total = 0;
  for (int c = 0; c < map.num_channels(); ++c) {
    total += map.TilesInChannel(c);
  }
  EXPECT_EQ(total, static_cast<uint64_t>(map.num_tiles()));
}

TEST(StaticMapping, WaitsForRowsCoverExactChannels) {
  StaticMapping map(1024, 64, 4, 2);  // channel = 128 rows
  // Rows [100, 300) span channels 0,1,2.
  auto waits = map.WaitsForRows(100, 300);
  ASSERT_EQ(waits.size(), 3u);
  EXPECT_EQ(waits[0].channel, 0);
  EXPECT_EQ(waits[1].channel, 1);
  EXPECT_EQ(waits[2].channel, 2);
  for (const auto& w : waits) {
    EXPECT_EQ(w.threshold, map.TilesInChannel(w.channel));
  }
  // Exactly one channel.
  auto one = map.WaitsForRows(128, 256);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].channel, 1);
  // Empty range waits nothing.
  EXPECT_TRUE(map.WaitsForRows(64, 64).empty());
}

TEST(StaticMapping, ChannelRowsRoundTripsWithChannelOf) {
  StaticMapping map(4096, 128, 8, 4);
  for (int c = 0; c < map.num_channels(); ++c) {
    const TileRange rows = map.ChannelRows(c);
    for (int64_t row = rows.lo; row < rows.hi; row += 128) {
      EXPECT_EQ(map.Channel(row / 128), c);
    }
  }
}

TEST(StaticMapping, RejectsMisalignedTile) {
  // m_per_rank = 100 not divisible by tile 64.
  EXPECT_THROW(StaticMapping(400, 64, 4, 1), Error);
}

TEST(DynamicMapping, LookupTablesRoundTrip) {
  DynamicMapping dyn;
  dyn.Resize(4);
  dyn.SetTile(0, TileRange{0, 64}, 2, 5);
  dyn.SetTile(3, TileRange{192, 256}, 1, 7);
  dyn.SetWaits(3, {ChannelWait{5, 2}, ChannelWait{7, 1}});
  EXPECT_EQ(dyn.num_tiles(), 4);
  EXPECT_EQ(dyn.ShapeRange(0).lo, 0);
  EXPECT_EQ(dyn.ShapeRange(0).hi, 64);
  EXPECT_EQ(dyn.Rank(0), 2);
  EXPECT_EQ(dyn.Channel(0), 5);
  EXPECT_EQ(dyn.Rank(3), 1);
  ASSERT_EQ(dyn.Waits(3).size(), 2u);
  EXPECT_EQ(dyn.Waits(3)[0], (ChannelWait{5, 2}));
  EXPECT_EQ(dyn.Waits(3)[1], (ChannelWait{7, 1}));
  EXPECT_TRUE(dyn.Waits(1).empty());
}

}  // namespace
}  // namespace tilelink::tl
